"""Deterministic fault injection for robustness tests.

Every helper here is counter- or token-based — never random — so a test
that kills a worker, tears a write, or interrupts training does so at a
reproducible point.  The worker-facing functions are plain top-level
functions (picklable by qualified name) and communicate through
environment variables, so they behave identically under ``fork`` and
``spawn`` start methods.

Injection points are ordinary monkeypatch targets in the production
modules:

- ``repro.core.parallel._assign_chunk`` — the process-pool worker body,
  resolved through the module namespace at submit time;
- ``repro.core.serialize._write_bytes`` / ``_replace`` — the staging and
  commit halves of the atomic model save;
- ``repro.core.checkpoint.write_checkpoint`` — called by the trainer
  after each checkpointed iteration;
- ``repro.serve.ingest._segment_write`` — the WAL's byte-level append
  (:func:`torn_wal_append` tears it mid-record);
- ``repro.serve.ingest._segment_truncate`` — the failed-append rollback
  (:func:`failing_wal_truncate` fails it, modelling a disk too dead even
  to truncate — the state a real crash leaves when the failure path never
  got to run);
- ``repro.serve.foldin._write_watermark`` — the advisory side-file write
  *after* the artifact publish (:func:`crash_after_publish` crashes in
  the publish/watermark gap the chaos tests prove is benign);
- ``repro.serve.foldin._write_snapshot`` — the applied-events snapshot
  write between the artifact publish and segment pruning
  (:func:`crash_before_snapshot` crashes in the publish/snapshot gap;
  the WAL still covers it, so restart replays to the same model);
- ``repro.serve.foldin.FoldinWorker.run_once`` / ``save_model`` inside a
  fold (:func:`failing_foldin_extend`, :func:`failing_reload`) — worker
  exception and reload-failure paths.

The serve-layer helpers are context managers that patch and restore the
production seams; serve modules are imported lazily inside them so this
module stays importable in environments exercising only the training
faults.
"""

from __future__ import annotations

import functools
import os
import time
from contextlib import contextmanager
from pathlib import Path

from repro.core import parallel as _parallel

__all__ = [
    "SimulatedCrash",
    "fail_on_call",
    "fail_after_call",
    "fail_from_call",
    "kill_worker_once",
    "lethal_assign_chunk",
    "kill_shard_worker",
    "lethal_estep_shard",
    "slow_workers",
    "slow_assign_chunk",
    "torn_wal_append",
    "failing_wal_truncate",
    "crash_after_publish",
    "crash_before_snapshot",
    "failing_foldin_extend",
    "failing_reload",
    "kill_prefork_worker",
    "lethal_reattach_hook",
    "prefork_reattach_crash",
]


class SimulatedCrash(RuntimeError):
    """Raised by injected faults.

    Deliberately *not* a :class:`~repro.exceptions.ReproError`: library
    code that catches its own typed errors must never swallow an injected
    crash, or the test would silently pass for the wrong reason.
    """


def fail_on_call(fn, *, calls: int, exc=SimulatedCrash, message: str = "injected fault"):
    """Wrap ``fn`` to raise *instead of* running on the ``calls``-th call.

    Calls are counted from 1; every other call passes through unchanged.
    """
    state = {"count": 0}

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        state["count"] += 1
        if state["count"] == calls:
            raise exc(f"{message} (call #{state['count']})")
        return fn(*args, **kwargs)

    wrapper.fault_state = state
    return wrapper


def fail_after_call(fn, *, calls: int, exc=SimulatedCrash, message: str = "injected fault"):
    """Wrap ``fn`` to raise *after* the ``calls``-th call completes.

    The side effects of that call (e.g. a checkpoint landing on disk)
    survive — exactly what a crash immediately after the call looks like.
    """
    state = {"count": 0}

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        state["count"] += 1
        result = fn(*args, **kwargs)
        if state["count"] == calls:
            raise exc(f"{message} (after call #{state['count']})")
        return result

    wrapper.fault_state = state
    return wrapper


def fail_from_call(fn, *, calls: int, exc=SimulatedCrash, message: str = "injected fault"):
    """Wrap ``fn`` to raise on the ``calls``-th call *and every call after*.

    The persistent-failure flavour of :func:`fail_on_call` — what a dead
    disk or a permanently corrupt artifact looks like to retry logic.
    """
    state = {"count": 0}

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        state["count"] += 1
        if state["count"] >= calls:
            raise exc(f"{message} (call #{state['count']})")
        return fn(*args, **kwargs)

    wrapper.fault_state = state
    return wrapper


# --------------------------------------------------------------------------
# Serve-layer faults.  Each context manager patches a production seam in the
# serving subsystem and restores it on exit; the serve modules are imported
# lazily so training-only test runs never pay for them.
# --------------------------------------------------------------------------


@contextmanager
def torn_wal_append(*, calls: int = 1, keep_bytes: int | None = None):
    """Tear the ``calls``-th WAL byte write: a prefix lands, then a crash.

    Exactly what a process dying mid-``write`` leaves on disk.  Yields the
    fault state; ``state["torn"]`` is True once the tear happened, and
    ``state["dropped_bytes"]`` records how much of the record was lost.
    ``keep_bytes`` pins the prefix length (default: half the write).
    """
    from repro.serve import ingest as _ingest

    original = _ingest._segment_write
    state = {"count": 0, "torn": False, "dropped_bytes": 0}

    def wrapper(handle, data):
        state["count"] += 1
        if state["count"] == calls:
            cut = keep_bytes if keep_bytes is not None else max(1, len(data) // 2)
            cut = min(cut, len(data))
            original(handle, data[:cut])
            handle.flush()  # the torn prefix reaches the file, like a real crash
            state["torn"] = True
            state["dropped_bytes"] = len(data) - cut
            raise SimulatedCrash(
                f"torn WAL append: kept {cut}/{len(data)} bytes (call #{state['count']})"
            )
        return original(handle, data)

    _ingest._segment_write = wrapper
    try:
        yield state
    finally:
        _ingest._segment_write = original


@contextmanager
def failing_wal_truncate(*, calls: int = 1, repeat: bool = True, exc=OSError):
    """Make the WAL's failed-append rollback truncate fail.

    Composed with :func:`torn_wal_append`, this models a disk dead enough
    that neither the write nor the cleanup succeeds — which is also how a
    test simulates a *process death* mid-append: the torn bytes stay on
    disk exactly as a crash would leave them, so recovery-time truncation
    can be exercised.  While the garbage remains, ``append`` must refuse
    to journal (a batch behind garbage would be invisible to readers).
    """
    from repro.serve import ingest as _ingest

    original = _ingest._segment_truncate
    wrap = fail_from_call if repeat else fail_on_call
    wrapper = wrap(original, calls=calls, exc=exc, message="injected truncate failure")
    _ingest._segment_truncate = wrapper
    try:
        yield wrapper.fault_state
    finally:
        _ingest._segment_truncate = original


@contextmanager
def crash_after_publish(*, calls: int = 1):
    """Crash between the artifact publish and the watermark side-file write.

    The artifact (with its *embedded* watermark) is already committed when
    this fires; only the advisory ``foldin.watermark.json`` write is lost —
    the gap the chaos tests prove replays to a bit-identical model.
    """
    from repro.serve import foldin as _foldin

    original = _foldin._write_watermark
    wrapper = fail_on_call(
        original,
        calls=calls,
        message="crash between artifact publish and watermark side-file",
    )
    _foldin._write_watermark = wrapper
    try:
        yield wrapper.fault_state
    finally:
        _foldin._write_watermark = original


@contextmanager
def crash_before_snapshot(*, calls: int = 1):
    """Crash between the artifact publish and the applied-events snapshot.

    The artifact (with its embedded watermark) is committed; the snapshot
    still describes the *previous* fold.  Pruning never outran that older
    snapshot, so the WAL retains the gap and a restarted worker replays
    it — the invariant :func:`repro.serve.foldin.FoldinWorker.bootstrap`
    relies on and the chaos tests prove.
    """
    from repro.serve import foldin as _foldin

    original = _foldin._write_snapshot
    wrapper = fail_on_call(
        original,
        calls=calls,
        message="crash between artifact publish and applied-events snapshot",
    )
    _foldin._write_snapshot = wrapper
    try:
        yield wrapper.fault_state
    finally:
        _foldin._write_snapshot = original


@contextmanager
def failing_foldin_extend(*, calls: int = 1, repeat: bool = False, exc=SimulatedCrash):
    """Make the fold-in worker's ``extend_model`` call raise.

    ``repeat=False`` fails only the ``calls``-th fold (a transient error
    the retry path must absorb); ``repeat=True`` fails from that call on
    (the persistent failure that must drive degraded mode).  The crash
    fires *before* any publish, so the watermark never moves.
    """
    from repro.serve import foldin as _foldin

    original = _foldin.extend_model
    wrap = fail_from_call if repeat else fail_on_call
    wrapper = wrap(original, calls=calls, exc=exc, message="injected fold-in failure")
    _foldin.extend_model = wrapper
    try:
        yield wrapper.fault_state
    finally:
        _foldin.extend_model = original


@contextmanager
def failing_reload(*, calls: int = 1, repeat: bool = True, exc=OSError):
    """Make :class:`~repro.serve.state.ModelState` bundle builds fail.

    Patches ``repro.serve.state._build_bundle`` — the validate step of the
    watch/validate/swap cycle — driving the reload-failure path (and, with
    ``repeat=True``, the capped backoff) without corrupting any real
    artifact.  Defaults to ``OSError`` because ``maybe_reload`` deliberately
    catches only ``(ReproError, OSError)``: an unexpected exception type
    should escape to the watch loop, not be absorbed as a routine failure.
    """
    from repro.serve import state as _state

    original = _state._build_bundle
    wrap = fail_from_call if repeat else fail_on_call
    wrapper = wrap(original, calls=calls, exc=exc, message="injected reload failure")
    _state._build_bundle = wrapper
    try:
        yield wrapper.fault_state
    finally:
        _state._build_bundle = original


# --------------------------------------------------------------------------
# Process-pool faults.  The original worker body is captured at import time
# (i.e. before any patching) so the wrappers below can delegate to it from
# inside worker processes without recursing into themselves.
# --------------------------------------------------------------------------

_ORIGINAL_ASSIGN_CHUNK = _parallel._assign_chunk

_KILL_TOKEN_ENV = "REPRO_FAULTS_KILL_TOKEN"
_SLOW_SECONDS_ENV = "REPRO_FAULTS_SLOW_SECONDS"


def lethal_assign_chunk(task):
    """Worker body that kills its own process once, then behaves normally.

    The kill token is a file; claiming it via ``os.rename`` is atomic, so
    exactly one worker dies no matter how many race for it.  The claimed
    marker is left behind for the test to assert a death really happened.
    """
    token = os.environ.get(_KILL_TOKEN_ENV, "")
    if token and os.path.exists(token):
        try:
            os.rename(token, token + ".claimed")
        except OSError:
            pass  # another worker claimed it first
        else:
            os._exit(43)
    return _ORIGINAL_ASSIGN_CHUNK(task)


@contextmanager
def kill_worker_once(tmp_path):
    """Arrange for exactly one pool worker to die mid-assignment.

    Yields the path of the claim marker (``<token>.claimed``) that exists
    once a worker has actually died.
    """
    token = Path(tmp_path) / "repro-kill-token"
    claimed = Path(str(token) + ".claimed")
    token.write_text("kill")
    os.environ[_KILL_TOKEN_ENV] = str(token)
    original = _parallel._assign_chunk
    _parallel._assign_chunk = lethal_assign_chunk
    try:
        yield claimed
    finally:
        _parallel._assign_chunk = original
        os.environ.pop(_KILL_TOKEN_ENV, None)
        token.unlink(missing_ok=True)
        claimed.unlink(missing_ok=True)


_SHARD_KILL_DIR_ENV = "REPRO_FAULTS_SHARD_KILL_TOKENS"


def lethal_estep_shard(task):
    """Shard E-step worker body that dies while a kill token remains.

    Tokens live in a directory (one file per scheduled death) so a single
    context manager can drive anything from one rebuild to a full
    degrade-to-serial: each dying worker claims one token atomically via
    ``os.rename`` and exits hard.  With no tokens left it delegates to the
    real implementation.
    """
    from repro.core import shard as _shard

    token_dir = os.environ.get(_SHARD_KILL_DIR_ENV, "")
    if token_dir and os.path.isdir(token_dir):
        for name in sorted(os.listdir(token_dir)):
            if name.endswith(".claimed"):
                continue
            token = os.path.join(token_dir, name)
            try:
                os.rename(token, token + ".claimed")
            except OSError:
                continue  # another worker claimed it first
            os._exit(43)
    return _shard._estep_shard_impl(task)


@contextmanager
def kill_shard_worker(tmp_path, *, deaths: int = 1):
    """Arrange for ``deaths`` shard-pool workers to die mid-E-step.

    One death exercises the rebuild path; more deaths than
    ``max_pool_restarts + 1`` exhaust the ladder and force the
    degrade-to-serial path (the serial fallback runs the real worker body
    in-process, so results stay bit-identical).  Yields the token
    directory; ``*.claimed`` files in it count the deaths that actually
    happened.
    """
    from repro.core import shard as _shard

    token_dir = Path(tmp_path) / "repro-shard-kill-tokens"
    token_dir.mkdir(exist_ok=True)
    for k in range(deaths):
        (token_dir / f"token-{k}").write_text("kill")
    os.environ[_SHARD_KILL_DIR_ENV] = str(token_dir)
    original = _shard._estep_shard
    _shard._estep_shard = lethal_estep_shard
    try:
        yield token_dir
    finally:
        _shard._estep_shard = original
        os.environ.pop(_SHARD_KILL_DIR_ENV, None)


def slow_assign_chunk(task):
    """Worker body that sleeps before delegating — drives chunk timeouts."""
    time.sleep(float(os.environ.get(_SLOW_SECONDS_ENV, "1.0")))
    return _ORIGINAL_ASSIGN_CHUNK(task)


@contextmanager
def slow_workers(seconds: float):
    """Make every pool chunk take at least ``seconds`` of wall clock."""
    os.environ[_SLOW_SECONDS_ENV] = str(seconds)
    original = _parallel._assign_chunk
    _parallel._assign_chunk = slow_assign_chunk
    try:
        yield
    finally:
        _parallel._assign_chunk = original
        os.environ.pop(_SLOW_SECONDS_ENV, None)


# --------------------------------------------------------------------------
# Prefork serving faults.  Workers are forked from the supervising process,
# so a seam patched *before* PreforkSupervisor.start() is inherited by every
# worker — including respawns — and the token-directory idiom bounds how
# many workers actually die.
# --------------------------------------------------------------------------

_PREFORK_KILL_DIR_ENV = "REPRO_FAULTS_PREFORK_KILL_TOKENS"


def lethal_reattach_hook():
    """Re-attach seam that kills the worker inside the swap window.

    Fires between a worker reading a new generation manifest and
    attaching its segment — the exact window where a worker death must
    not let the parent retire the old generation early (the dead worker
    never acked the new one, and its replacement starts on whatever the
    manifest names *now*).  Token-claimed via ``os.rename`` like every
    other process-kill injector, so respawned workers (which inherit the
    patch) survive once the tokens run out.
    """
    token_dir = os.environ.get(_PREFORK_KILL_DIR_ENV, "")
    if token_dir and os.path.isdir(token_dir):
        for name in sorted(os.listdir(token_dir)):
            if name.endswith(".claimed"):
                continue
            token = os.path.join(token_dir, name)
            try:
                os.rename(token, token + ".claimed")
            except OSError:
                continue  # another worker claimed it first
            os._exit(43)


@contextmanager
def prefork_reattach_crash(tmp_path, *, deaths: int = 1):
    """Arrange for ``deaths`` prefork workers to die mid-re-attach.

    Patch before ``PreforkSupervisor.start()`` so forked workers inherit
    the seam; the hook only fires when a worker *re-attaches* (initial
    load also passes through it, so schedule the swap before arming, or
    count the initial attaches into ``deaths``).  Yields the token
    directory; ``*.claimed`` files count the deaths that happened.
    """
    from repro.serve import state as _state

    token_dir = Path(tmp_path) / "repro-prefork-kill-tokens"
    token_dir.mkdir(exist_ok=True)
    for k in range(deaths):
        (token_dir / f"token-{k}").write_text("kill")
    os.environ[_PREFORK_KILL_DIR_ENV] = str(token_dir)
    original = _state._reattach_hook
    _state._reattach_hook = lethal_reattach_hook
    try:
        yield token_dir
    finally:
        _state._reattach_hook = original
        os.environ.pop(_PREFORK_KILL_DIR_ENV, None)


def kill_prefork_worker(run_dir, *, index: int | None = None) -> int:
    """SIGKILL one live registered prefork worker; returns its pid.

    Reads the worker registration files under ``run_dir`` — the same
    files the supervisor's generation GC trusts — picks the requested
    (or lowest) live worker, and kills it without warning.  Models a
    segfault/OOM-kill mid-traffic; the supervisor must respawn it and
    no in-flight request on *other* workers may fail.
    """
    import json as _json
    import signal as _signal

    workers_dir = Path(run_dir) / "workers"
    candidates = []
    for path in sorted(workers_dir.glob("*.json")):
        try:
            reg = _json.loads(path.read_text("utf-8"))
        except (OSError, ValueError):
            continue
        pid = reg.get("pid")
        if not isinstance(pid, int):
            continue
        try:
            os.kill(pid, 0)
        except OSError:
            continue
        if index is None or reg.get("worker") == index:
            candidates.append((reg.get("worker", 0), pid))
    if not candidates:
        raise RuntimeError(f"no live prefork worker registered under {run_dir}")
    candidates.sort()
    pid = candidates[0][1]
    os.kill(pid, _signal.SIGKILL)
    return pid
