"""Deterministic fault injection for robustness tests.

Every helper here is counter- or token-based — never random — so a test
that kills a worker, tears a write, or interrupts training does so at a
reproducible point.  The worker-facing functions are plain top-level
functions (picklable by qualified name) and communicate through
environment variables, so they behave identically under ``fork`` and
``spawn`` start methods.

Injection points are ordinary monkeypatch targets in the production
modules:

- ``repro.core.parallel._assign_chunk`` — the process-pool worker body,
  resolved through the module namespace at submit time;
- ``repro.core.serialize._write_bytes`` / ``_replace`` — the staging and
  commit halves of the atomic model save;
- ``repro.core.checkpoint.write_checkpoint`` — called by the trainer
  after each checkpointed iteration.
"""

from __future__ import annotations

import functools
import os
import time
from contextlib import contextmanager
from pathlib import Path

from repro.core import parallel as _parallel

__all__ = [
    "SimulatedCrash",
    "fail_on_call",
    "fail_after_call",
    "kill_worker_once",
    "lethal_assign_chunk",
    "slow_workers",
    "slow_assign_chunk",
]


class SimulatedCrash(RuntimeError):
    """Raised by injected faults.

    Deliberately *not* a :class:`~repro.exceptions.ReproError`: library
    code that catches its own typed errors must never swallow an injected
    crash, or the test would silently pass for the wrong reason.
    """


def fail_on_call(fn, *, calls: int, exc=SimulatedCrash, message: str = "injected fault"):
    """Wrap ``fn`` to raise *instead of* running on the ``calls``-th call.

    Calls are counted from 1; every other call passes through unchanged.
    """
    state = {"count": 0}

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        state["count"] += 1
        if state["count"] == calls:
            raise exc(f"{message} (call #{state['count']})")
        return fn(*args, **kwargs)

    wrapper.fault_state = state
    return wrapper


def fail_after_call(fn, *, calls: int, exc=SimulatedCrash, message: str = "injected fault"):
    """Wrap ``fn`` to raise *after* the ``calls``-th call completes.

    The side effects of that call (e.g. a checkpoint landing on disk)
    survive — exactly what a crash immediately after the call looks like.
    """
    state = {"count": 0}

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        state["count"] += 1
        result = fn(*args, **kwargs)
        if state["count"] == calls:
            raise exc(f"{message} (after call #{state['count']})")
        return result

    wrapper.fault_state = state
    return wrapper


# --------------------------------------------------------------------------
# Process-pool faults.  The original worker body is captured at import time
# (i.e. before any patching) so the wrappers below can delegate to it from
# inside worker processes without recursing into themselves.
# --------------------------------------------------------------------------

_ORIGINAL_ASSIGN_CHUNK = _parallel._assign_chunk

_KILL_TOKEN_ENV = "REPRO_FAULTS_KILL_TOKEN"
_SLOW_SECONDS_ENV = "REPRO_FAULTS_SLOW_SECONDS"


def lethal_assign_chunk(task):
    """Worker body that kills its own process once, then behaves normally.

    The kill token is a file; claiming it via ``os.rename`` is atomic, so
    exactly one worker dies no matter how many race for it.  The claimed
    marker is left behind for the test to assert a death really happened.
    """
    token = os.environ.get(_KILL_TOKEN_ENV, "")
    if token and os.path.exists(token):
        try:
            os.rename(token, token + ".claimed")
        except OSError:
            pass  # another worker claimed it first
        else:
            os._exit(43)
    return _ORIGINAL_ASSIGN_CHUNK(task)


@contextmanager
def kill_worker_once(tmp_path):
    """Arrange for exactly one pool worker to die mid-assignment.

    Yields the path of the claim marker (``<token>.claimed``) that exists
    once a worker has actually died.
    """
    token = Path(tmp_path) / "repro-kill-token"
    claimed = Path(str(token) + ".claimed")
    token.write_text("kill")
    os.environ[_KILL_TOKEN_ENV] = str(token)
    original = _parallel._assign_chunk
    _parallel._assign_chunk = lethal_assign_chunk
    try:
        yield claimed
    finally:
        _parallel._assign_chunk = original
        os.environ.pop(_KILL_TOKEN_ENV, None)
        token.unlink(missing_ok=True)
        claimed.unlink(missing_ok=True)


def slow_assign_chunk(task):
    """Worker body that sleeps before delegating — drives chunk timeouts."""
    time.sleep(float(os.environ.get(_SLOW_SECONDS_ENV, "1.0")))
    return _ORIGINAL_ASSIGN_CHUNK(task)


@contextmanager
def slow_workers(seconds: float):
    """Make every pool chunk take at least ``seconds`` of wall clock."""
    os.environ[_SLOW_SECONDS_ENV] = str(seconds)
    original = _parallel._assign_chunk
    _parallel._assign_chunk = slow_assign_chunk
    try:
        yield
    finally:
        _parallel._assign_chunk = original
        os.environ.pop(_SLOW_SECONDS_ENV, None)
