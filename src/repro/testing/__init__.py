"""Test-support utilities shipped with the library.

:mod:`repro.testing.faults` is a deterministic fault-injection harness
used by the robustness suite (and usable by downstream integrators) to
prove that training survives worker death, torn writes, and mid-run
interruption.  Nothing in here is imported by the production modules.
"""

from repro.testing.faults import (
    SimulatedCrash,
    fail_after_call,
    fail_on_call,
    kill_worker_once,
    slow_workers,
)

__all__ = [
    "SimulatedCrash",
    "fail_after_call",
    "fail_on_call",
    "kill_worker_once",
    "slow_workers",
]
