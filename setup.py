"""Legacy setup shim.

Offline environments without the `wheel` package cannot do PEP 517
editable installs; this shim enables `pip install -e . --no-use-pep517`.
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
