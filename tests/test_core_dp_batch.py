"""Parity tests: the batched Viterbi must be bit-identical to the scalar DP.

The batched kernel exists purely for speed — every result (levels AND
log-likelihoods, including every tie case) must match
:func:`repro.core.dp.best_monotone_path` exactly.  The randomized suites
draw scores from a tiny integer set so ties are dense, which is where
ordering bugs hide.
"""

import numpy as np
import pytest

from repro.core.dp import best_monotone_path, path_log_likelihood
from repro.core.dp_batch import batch_assign, batch_assign_item_major, batch_viterbi
from repro.exceptions import ConfigurationError


def _random_ragged_batch(rng, *, num_users, num_items, max_len, tie_dense):
    """A score table plus ragged per-user row indices."""
    if tie_dense:
        # Integer scores from a 3-value set make equal path sums common.
        table = rng.integers(-2, 1, size=(5, num_items)).astype(np.float64)
    else:
        table = rng.normal(size=(5, num_items))
    user_rows = [
        rng.integers(0, num_items, size=int(rng.integers(1, max_len + 1)))
        for _ in range(num_users)
    ]
    return table, user_rows


def _assert_parity(table, user_rows, **kwargs):
    batched = batch_assign(table, user_rows, **kwargs)
    for rows, got in zip(user_rows, batched):
        expected = best_monotone_path(table[:, rows].T, **kwargs)
        np.testing.assert_array_equal(got.levels, expected.levels)
        assert got.log_likelihood == expected.log_likelihood  # bit-identical
        assert got.levels.dtype == np.int64


class TestRaggedBatchParity:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("tie_dense", [True, False])
    def test_base_model_parity(self, seed, tie_dense):
        rng = np.random.default_rng(seed)
        table, user_rows = _random_ragged_batch(
            rng, num_users=23, num_items=40, max_len=33, tie_dense=tie_dense
        )
        _assert_parity(table, user_rows)

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("max_step", [2, 3, 7])
    def test_skip_level_parity(self, seed, max_step):
        """max_step > 1 without penalties: largest-δ tie-break must match."""
        rng = np.random.default_rng(100 + seed)
        table, user_rows = _random_ragged_batch(
            rng, num_users=17, num_items=30, max_len=21, tie_dense=True
        )
        _assert_parity(table, user_rows, max_step=max_step)

    @pytest.mark.parametrize("seed", range(6))
    def test_penalized_parity(self, seed):
        rng = np.random.default_rng(200 + seed)
        table, user_rows = _random_ragged_batch(
            rng, num_users=17, num_items=30, max_len=21, tie_dense=True
        )
        penalties = np.array([0.0, np.log(0.6), np.log(0.4)])
        _assert_parity(table, user_rows, max_step=2, step_log_penalties=penalties)

    def test_forbidden_stay_penalty_parity(self):
        """-inf penalties (a transition made impossible) must agree too.

        Lengths stay within the level count: with staying forbidden a
        longer sequence has no feasible path at all, and the scalar
        kernel's answer for an infeasible problem is unspecified.
        """
        rng = np.random.default_rng(300)
        table, user_rows = _random_ragged_batch(
            rng, num_users=11, num_items=25, max_len=5, tie_dense=True
        )
        penalties = np.array([-np.inf, 0.0])
        _assert_parity(table, user_rows, max_step=1, step_log_penalties=penalties)

    def test_levels_are_valid_paths(self):
        rng = np.random.default_rng(7)
        table, user_rows = _random_ragged_batch(
            rng, num_users=15, num_items=30, max_len=25, tie_dense=False
        )
        for rows, result in zip(user_rows, batch_assign(table, user_rows)):
            recomputed = path_log_likelihood(table[:, rows].T, result.levels)
            assert recomputed == pytest.approx(result.log_likelihood)


class TestEdgeCases:
    def test_empty_batch(self):
        table = np.zeros((3, 4))
        assert batch_assign(table, []) == []

    def test_empty_sequence(self):
        table = np.arange(12.0).reshape(3, 4)
        results = batch_assign(table, [np.empty(0, dtype=np.int64)])
        assert len(results) == 1
        assert len(results[0].levels) == 0
        assert results[0].log_likelihood == 0.0

    def test_empty_sequences_mixed_with_real_ones(self):
        rng = np.random.default_rng(1)
        table = rng.normal(size=(4, 10))
        user_rows = [
            np.empty(0, dtype=np.int64),
            np.array([3, 1, 4]),
            np.empty(0, dtype=np.int64),
            np.array([9]),
        ]
        results = batch_assign(table, user_rows)
        assert len(results[0].levels) == 0 and len(results[2].levels) == 0
        expected = best_monotone_path(table[:, user_rows[1]].T)
        np.testing.assert_array_equal(results[1].levels, expected.levels)
        single = best_monotone_path(table[:, user_rows[3]].T)
        np.testing.assert_array_equal(results[3].levels, single.levels)

    def test_single_action_tie_takes_lower_level(self):
        table = np.array([[1.0], [1.0], [0.5]])
        (result,) = batch_assign(table, [np.array([0])])
        assert result.levels.tolist() == [0]
        assert result.log_likelihood == 1.0

    def test_single_level(self):
        table = np.array([[0.5, -1.0, 2.0]])
        (result,) = batch_assign(table, [np.array([2, 0, 1])])
        assert result.levels.tolist() == [0, 0, 0]
        assert result.log_likelihood == pytest.approx(1.5)

    def test_all_equal_scores_prefer_late_climb(self):
        """All-zero scores: every path ties; parity on the canonical tie."""
        table = np.zeros((4, 6))
        user_rows = [np.array([0, 1, 2, 3, 4, 5]), np.array([2, 2])]
        _assert_parity(table, user_rows)

    def test_minus_inf_scores(self):
        """Log-zero scores (unsmoothed fits) must not poison neighbours."""
        rng = np.random.default_rng(5)
        table = rng.normal(size=(4, 12))
        table[1, :] = -np.inf
        user_rows = [rng.integers(0, 12, size=9) for _ in range(7)]
        _assert_parity(table, user_rows)

    def test_bucket_boundaries(self):
        """Lengths straddling the power-of-two bucket edges stay exact."""
        rng = np.random.default_rng(11)
        table = rng.integers(-2, 1, size=(5, 20)).astype(np.float64)
        user_rows = [
            rng.integers(0, 20, size=n)
            for n in (1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33, 64)
        ]
        _assert_parity(table, user_rows)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ConfigurationError):
            batch_assign(np.zeros(3), [np.array([0])])
        with pytest.raises(ConfigurationError):
            batch_assign_item_major(np.zeros((3, 4, 2)), [np.array([0])])
        with pytest.raises(ConfigurationError):
            batch_viterbi(np.zeros((2, 3)), np.array([3, 3]))
        with pytest.raises(ConfigurationError):
            batch_viterbi(np.zeros((2, 3, 4)), np.array([4, 1]))  # length > T
        with pytest.raises(ConfigurationError):
            batch_viterbi(np.zeros((2, 3, 4)), np.array([0, 1]))  # length < 1

    def test_batch_viterbi_direct(self):
        """The padded low-level API agrees with the scalar DP row by row."""
        rng = np.random.default_rng(21)
        lengths = np.array([4, 1, 3])
        scores = rng.integers(-2, 1, size=(3, 4, 5)).astype(np.float64)
        levels, lls = batch_viterbi(scores, lengths)
        for u, n in enumerate(lengths):
            expected = best_monotone_path(scores[u, :n, :])
            np.testing.assert_array_equal(levels[u, :n], expected.levels)
            assert lls[u] == expected.log_likelihood
