"""Shared fixtures: small hand-built datasets used across the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.features import FeatureKind, FeatureSet, FeatureSpec
from repro.data.actions import Action, ActionLog
from repro.data.items import Item, ItemCatalog


@pytest.fixture
def tiny_catalog() -> ItemCatalog:
    """Twelve items with one feature of each supported kind."""
    items = []
    for k in range(12):
        items.append(
            Item(
                id=f"i{k}",
                features={
                    "color": ["red", "green", "blue"][k % 3],
                    "steps": k % 4,
                    "weight": 0.5 + k,
                },
                metadata={"difficulty": 1.0 + (k % 3)},
            )
        )
    return ItemCatalog(items)


@pytest.fixture
def tiny_feature_set() -> FeatureSet:
    return FeatureSet(
        [
            FeatureSpec("color", FeatureKind.CATEGORICAL),
            FeatureSpec("steps", FeatureKind.COUNT),
            FeatureSpec("weight", FeatureKind.POSITIVE),
        ]
    )


@pytest.fixture
def tiny_log() -> ActionLog:
    """Three users with deterministic, progression-flavoured sequences.

    Early actions use low-index items, later ones high-index items, so a
    skill model has a real (if small) signal to latch onto.
    """
    rng = np.random.default_rng(42)
    actions = []
    for u in range(3):
        length = 10 + 2 * u
        for t in range(length):
            tier = min(2, (3 * t) // length)  # 0, 1, 2 as the sequence advances
            item = f"i{int(rng.integers(4 * tier, 4 * tier + 4))}"
            actions.append(Action(time=float(t), user=f"u{u}", item=item))
    return ActionLog.from_actions(actions)


@pytest.fixture
def fitted_tiny_model(tiny_log, tiny_catalog, tiny_feature_set):
    from repro.core.training import fit_skill_model

    return fit_skill_model(
        tiny_log,
        tiny_catalog,
        tiny_feature_set.with_id_feature(),
        num_levels=3,
        init_min_actions=5,
        max_iterations=20,
    )
