"""Tests for repro.recsys.metrics and the model-card report."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.recsys.metrics import mean_rank, ndcg_at_k, ranking_summary, recall_at_k
from repro.recsys.ranking import ItemPredictionResult


class TestNdcg:
    def test_rank_one_is_perfect(self):
        assert ndcg_at_k(np.array([1.0, 1.0]), k=10) == pytest.approx(1.0)

    def test_known_value_rank_three(self):
        assert ndcg_at_k(np.array([3.0]), k=10) == pytest.approx(1.0 / np.log2(4.0))

    def test_outside_cutoff_scores_zero(self):
        assert ndcg_at_k(np.array([11.0]), k=10) == 0.0

    def test_monotone_in_k(self):
        ranks = np.array([2.0, 7.0, 15.0, 40.0])
        values = [ndcg_at_k(ranks, k) for k in (1, 5, 10, 50)]
        assert values == sorted(values)

    def test_fractional_midrank_interpolates(self):
        low = ndcg_at_k(np.array([2.0]), k=10)
        mid = ndcg_at_k(np.array([2.5]), k=10)
        high = ndcg_at_k(np.array([3.0]), k=10)
        assert high < mid < low

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ndcg_at_k(np.array([1.0]), k=0)
        with pytest.raises(ConfigurationError):
            ndcg_at_k(np.array([0.5]))
        with pytest.raises(ConfigurationError):
            ndcg_at_k(np.array([]))


class TestRecallAndMeanRank:
    def test_recall_known(self):
        ranks = np.array([1.0, 5.0, 11.0, 30.0])
        assert recall_at_k(ranks, k=10) == pytest.approx(0.5)
        assert recall_at_k(ranks, k=1) == pytest.approx(0.25)

    def test_recall_matches_accuracy_at(self):
        ranks = np.array([1.0, 4.0, 9.0, 20.0])
        result = ItemPredictionResult(ranks=ranks, num_items=50)
        assert recall_at_k(ranks, 10) == result.accuracy_at(10)

    def test_mean_rank(self):
        assert mean_rank(np.array([1.0, 3.0])) == 2.0


class TestRankingSummary:
    def test_keys_and_consistency(self):
        ranks = np.array([1.0, 2.0, 12.0, 7.0])
        result = ItemPredictionResult(ranks=ranks, num_items=20)
        summary = ranking_summary(result, ks=(1, 10))
        assert set(summary) == {"rr", "mean_rank", "recall@1", "ndcg@1", "recall@10", "ndcg@10"}
        assert summary["rr"] == pytest.approx(result.mean_reciprocal_rank)
        assert summary["recall@10"] == pytest.approx(np.mean(ranks <= 10))
        assert summary["ndcg@1"] <= summary["ndcg@10"]


class TestModelCard:
    def test_contains_all_sections(self, fitted_tiny_model, tiny_log):
        from repro.analysis import model_card

        card = model_card(fitted_tiny_model, tiny_log)
        for heading in (
            "# Skill model card",
            "## Training",
            "## Trajectories",
            "## Feature trends",
            "## Item difficulty",
            "## Calibration",
            "## Most typical items per level",
        ):
            assert heading in card, heading

    def test_without_log_skips_calibration(self, fitted_tiny_model):
        from repro.analysis import model_card

        card = model_card(fitted_tiny_model)
        assert "## Calibration" not in card
        assert "## Item difficulty" in card

    def test_custom_difficulties_used(self, fitted_tiny_model):
        from repro.analysis import model_card

        difficulties = {item: 2.0 for item in fitted_tiny_model.encoded.item_ids}
        card = model_card(fitted_tiny_model, difficulties=difficulties)
        assert "mean 2.00" in card

    def test_cli_inspect(self, fitted_tiny_model, tmp_path, capsys):
        from repro.cli import main
        from repro.core.serialize import save_model

        save_model(fitted_tiny_model, tmp_path / "m")
        assert main(["inspect", str(tmp_path / "m")]) == 0
        assert "# Skill model card" in capsys.readouterr().out
