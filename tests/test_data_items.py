"""Tests for repro.data.items."""

import pytest

from repro.data.items import Item, ItemCatalog
from repro.exceptions import DataError


class TestItem:
    def test_feature_access(self):
        item = Item(id="x", features={"a": 1})
        assert item.feature("a") == 1

    def test_missing_feature(self):
        with pytest.raises(DataError):
            Item(id="x", features={}).feature("nope")

    def test_mappings_are_copied(self):
        features = {"a": 1}
        item = Item(id="x", features=features)
        features["a"] = 99
        assert item.features["a"] == 1


class TestItemCatalog:
    def test_len_iter_contains(self, tiny_catalog):
        assert len(tiny_catalog) == 12
        assert "i0" in tiny_catalog
        assert "ghost" not in tiny_catalog
        assert sum(1 for _ in tiny_catalog) == 12

    def test_getitem(self, tiny_catalog):
        assert tiny_catalog["i3"].id == "i3"
        with pytest.raises(DataError):
            tiny_catalog["ghost"]

    def test_get_default(self, tiny_catalog):
        assert tiny_catalog.get("ghost") is None

    def test_duplicate_ids_rejected(self):
        items = [Item(id="x", features={"a": 1}), Item(id="x", features={"a": 2})]
        with pytest.raises(DataError):
            ItemCatalog(items)

    def test_inconsistent_features_rejected(self):
        items = [Item(id="x", features={"a": 1}), Item(id="y", features={"b": 2})]
        with pytest.raises(DataError):
            ItemCatalog(items)

    def test_feature_names_sorted(self, tiny_catalog):
        assert tiny_catalog.feature_names == ("color", "steps", "weight")

    def test_feature_values_order(self, tiny_catalog):
        values = tiny_catalog.feature_values("steps")
        assert values == [k % 4 for k in range(12)]

    def test_feature_values_unknown(self, tiny_catalog):
        with pytest.raises(DataError):
            tiny_catalog.feature_values("nope")

    def test_restrict(self, tiny_catalog):
        subset = tiny_catalog.restrict(["i0", "i5"])
        assert set(subset.ids) == {"i0", "i5"}

    def test_subset_where(self, tiny_catalog):
        reds = tiny_catalog.subset_where(lambda item: item.features["color"] == "red")
        assert all(item.features["color"] == "red" for item in reds)
        assert len(reds) == 4

    def test_empty_catalog(self):
        catalog = ItemCatalog([])
        assert len(catalog) == 0
        assert catalog.feature_names == ()
