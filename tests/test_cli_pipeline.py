"""Tests for the simulate → fit → score CLI pipeline and schema IO."""

import json

import pytest

from repro.cli import main
from repro.core.features import FeatureKind, FeatureSet, FeatureSpec
from repro.exceptions import ConfigurationError


class TestFeatureSetJson:
    def test_round_trip(self):
        fs = FeatureSet(
            [
                FeatureSpec("a", FeatureKind.CATEGORICAL, vocabulary=("x", "y")),
                FeatureSpec("b", FeatureKind.COUNT),
                FeatureSpec("c", FeatureKind.POSITIVE),
            ]
        )
        restored = FeatureSet.from_json(fs.to_json())
        assert restored.names == fs.names
        assert restored.specs[0].vocabulary == ("x", "y")
        assert restored.specs[1].kind is FeatureKind.COUNT

    def test_json_serializable(self):
        fs = FeatureSet([FeatureSpec("a", FeatureKind.COUNT)])
        json.dumps(fs.to_json())  # must not raise

    def test_malformed_payload(self):
        with pytest.raises(ConfigurationError):
            FeatureSet.from_json([{"name": "a", "kind": "nonsense"}])
        with pytest.raises(ConfigurationError):
            FeatureSet.from_json([{"kind": "count"}])


class TestCliPipeline:
    def test_simulate_fit_score(self, tmp_path, capsys):
        data = str(tmp_path / "cook")
        model = str(tmp_path / "model")
        assert main(
            ["simulate", "cooking", "--out", data, "--users", "60", "--items", "200", "--seed", "2"]
        ) == 0
        assert (tmp_path / "cook.log.jsonl").exists()
        assert (tmp_path / "cook.catalog.jsonl").exists()
        assert (tmp_path / "cook.schema.json").exists()

        assert main(
            [
                "fit", data,
                "--levels", "4",
                "--model", model,
                "--init-min-actions", "10",
                "--max-iterations", "10",
            ]
        ) == 0
        assert (tmp_path / "model.json").exists()
        assert (tmp_path / "model.npz").exists()

        out_file = str(tmp_path / "difficulty.jsonl")
        assert main(["score", model, "--top", "3", "--output", out_file]) == 0
        lines = (tmp_path / "difficulty.jsonl").read_text().strip().splitlines()
        assert len(lines) == 200
        record = json.loads(lines[0])
        assert 1.0 <= record["difficulty"] <= 4.0
        out = capsys.readouterr().out
        assert "fitted in" in out

    def test_simulate_language_has_no_items_knob(self, tmp_path, capsys):
        code = main(
            ["simulate", "language", "--out", str(tmp_path / "x"), "--items", "10"]
        )
        assert code == 2
        assert "no --items knob" in capsys.readouterr().err

    def test_simulate_unknown_domain(self):
        with pytest.raises(SystemExit):
            main(["simulate", "chess", "--out", "x"])

    def test_score_missing_model(self, tmp_path, capsys):
        assert main(["score", str(tmp_path / "nope")]) == 2
        assert "error" in capsys.readouterr().err


class TestCliObservability:
    @pytest.fixture(autouse=True)
    def _clean_logging(self):
        from repro.obs.logging import reset_logging

        yield
        reset_logging()

    def _simulate(self, tmp_path):
        data = str(tmp_path / "cook")
        assert main(
            ["simulate", "cooking", "--out", data, "--users", "40", "--items", "120", "--seed", "3"]
        ) == 0
        return data

    def test_fit_emits_jsonl_logs_and_metrics(self, tmp_path, capsys):
        from repro.obs.metrics import MetricsRegistry, use_registry

        data = self._simulate(tmp_path)
        model = str(tmp_path / "model")
        metrics_path = tmp_path / "metrics.json"
        # A scoped registry keeps the snapshot free of instruments other
        # tests in this process already touched.
        with use_registry(MetricsRegistry()):
            assert main(
                [
                    "fit", data,
                    "--levels", "3",
                    "--model", model,
                    "--init-min-actions", "10",
                    "--max-iterations", "5",
                    "--checkpoint-every", "1",
                    "--log-level", "INFO",
                    "--log-json",
                    "--metrics-out", str(metrics_path),
                ]
            ) == 0
        captured = capsys.readouterr()
        assert "wrote metrics to" in captured.out

        # Every log line is a JSON record with the documented schema, and
        # the iteration events carry the structured payload.
        log_lines = [l for l in captured.err.splitlines() if l.strip()]
        assert log_lines
        events = []
        for line in log_lines:
            record = json.loads(line)
            for key in ("ts", "level", "run", "component", "event", "elapsed_ms"):
                assert key in record
            events.append(record["event"])
        assert "iteration" in events
        assert "checkpoint written" in events
        assert "fit complete" in events
        assert "model saved" in events

        # The metrics file satisfies the acceptance criteria: per-iteration
        # LLs, per-stage wall time, pool events, checkpoint accounting.
        payload = json.loads(metrics_path.read_text())
        assert payload["schema"] == "repro-metrics/1"
        telemetry = payload["telemetry"]
        iterations = len(telemetry["log_likelihoods"])
        assert iterations >= 1
        assert len(telemetry["iterations"]) == iterations
        for stage in ("table_build", "assign", "cell_fit", "checkpoint", "iteration"):
            assert stage in telemetry["stage_seconds"]
            assert payload["histograms"][f"train.{stage}_seconds"]["count"] == iterations
        assert set(telemetry["pool_events"]) == {"rebuilds", "degraded", "chunk_timeouts"}
        assert telemetry["checkpoints"], "checkpoint-every 1 must record events"
        assert payload["counters"]["checkpoint.writes"] == len(telemetry["checkpoints"])
        assert payload["counters"]["train.iterations"] == iterations
        assert payload["run"] == telemetry["run_id"]

        # The stdlib checker accepts both artifacts end to end.
        import subprocess
        import sys as _sys
        from pathlib import Path as _Path

        log_file = tmp_path / "fit.log.jsonl"
        log_file.write_text("\n".join(log_lines) + "\n")
        checker = _Path(__file__).resolve().parents[1] / "tools" / "check_obs_output.py"
        proc = subprocess.run(
            [_sys.executable, str(checker), "--log", str(log_file), "--metrics", str(metrics_path)],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_inspect_prints_telemetry_section(self, tmp_path, capsys):
        data = self._simulate(tmp_path)
        model = str(tmp_path / "model")
        assert main(
            [
                "fit", data,
                "--levels", "3",
                "--model", model,
                "--init-min-actions", "10",
                "--max-iterations", "5",
            ]
        ) == 0
        capsys.readouterr()
        assert main(["inspect", model]) == 0
        out = capsys.readouterr().out
        assert "## Telemetry" in out
        assert "stage wall-time" in out

    def test_inspect_prints_artifact_section(self, tmp_path, capsys):
        data = self._simulate(tmp_path)
        model = str(tmp_path / "model")
        assert main(
            [
                "fit", data,
                "--levels", "3",
                "--model", model,
                "--init-min-actions", "10",
                "--max-iterations", "5",
            ]
        ) == 0
        capsys.readouterr()
        assert main(["inspect", model]) == 0
        out = capsys.readouterr().out
        assert "## Artifacts" in out
        assert "format version: 1" in out
        assert "(verified)" in out
        assert "telemetry run: " in out
        # the run id printed in Artifacts is the saved telemetry's run id
        import json as _json

        run_id = _json.loads((tmp_path / "model.json").read_text())["telemetry"]["run_id"]
        assert run_id in out

    def test_run_metrics_out_without_fit_telemetry(self, tmp_path, capsys):
        metrics_path = tmp_path / "run-metrics.json"
        assert main(["run", "table1", "--metrics-out", str(metrics_path)]) == 0
        payload = json.loads(metrics_path.read_text())
        assert payload["schema"] == "repro-metrics/1"
        assert payload["telemetry"] is None
        capsys.readouterr()


class TestCliCheckpointing:
    def _simulate(self, tmp_path):
        data = str(tmp_path / "cook")
        assert main(
            ["simulate", "cooking", "--out", data, "--users", "40", "--items", "120", "--seed", "3"]
        ) == 0
        return data

    def test_fit_writes_checkpoint_and_resume_continues(self, tmp_path, capsys):
        data = self._simulate(tmp_path)
        model = str(tmp_path / "model")
        assert main(
            [
                "fit", data,
                "--levels", "4",
                "--model", model,
                "--init-min-actions", "10",
                "--max-iterations", "2",
                "--checkpoint-every", "1",
            ]
        ) == 0
        ckpt = tmp_path / "model.ckpt.json"
        assert ckpt.exists()
        assert (tmp_path / "model.json").exists()

        # resume from the checkpoint; config (including the iteration cap)
        # comes from the checkpoint, so this re-materializes and re-saves
        assert main(
            ["fit", data, "--levels", "4", "--model", model, "--resume"]
        ) == 0
        out = capsys.readouterr().out
        assert "resuming from" in out
        assert "fitted in" in out

    def test_resume_without_checkpoint_fails_cleanly(self, tmp_path, capsys):
        data = self._simulate(tmp_path)
        model = str(tmp_path / "model")
        assert main(
            ["fit", data, "--levels", "4", "--model", model, "--resume"]
        ) == 2
        assert "no checkpoint" in capsys.readouterr().err


class TestCliStorePipeline:
    """simulate --store / convert → fit → inspect on columnar stores."""

    def _simulate_log(self, tmp_path):
        data = str(tmp_path / "syn")
        assert main(
            [
                "simulate", "synthetic",
                "--out", data,
                "--users", "30",
                "--items", "80",
                "--seed", "4",
            ]
        ) == 0
        return data

    def test_convert_fit_inspect(self, tmp_path, capsys):
        data = self._simulate_log(tmp_path)
        store = str(tmp_path / "syn.store")
        assert main(
            ["convert", data, store, "--users-per-shard", "8"]
        ) == 0
        out = capsys.readouterr().out
        assert "converted 30 users" in out
        assert "4 shard(s)" in out

        model = str(tmp_path / "model")
        assert main(
            [
                "fit", data,
                "--levels", "3",
                "--model", model,
                "--init-min-actions", "10",
                "--max-iterations", "5",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "training out-of-core" in out
        assert (tmp_path / "model.json").exists()

        assert main(["inspect", store]) == 0
        out = capsys.readouterr().out
        assert "## Action store" in out
        assert "users: 30" in out
        assert "shards: 4" in out
        assert "verified" in out
        assert "shard-00000" in out

    def test_store_fit_matches_log_fit(self, tmp_path, capsys):
        data = self._simulate_log(tmp_path)
        store = str(tmp_path / "syn.store")
        assert main(["convert", data, store]) == 0
        assert main(
            [
                "fit", store,
                "--levels", "3",
                "--model", str(tmp_path / "m_store"),
                "--init-min-actions", "10",
                "--max-iterations", "5",
            ]
        ) == 0
        # Hide the store so the same prefix resolves to the JSONL log.
        (tmp_path / "syn.store").rename(tmp_path / "aside.store")
        assert main(
            [
                "fit", data,
                "--levels", "3",
                "--model", str(tmp_path / "m_log"),
                "--init-min-actions", "10",
                "--max-iterations", "5",
            ]
        ) == 0
        capsys.readouterr()
        a = json.loads((tmp_path / "m_store.json").read_text())
        b = json.loads((tmp_path / "m_log.json").read_text())
        assert a["trace"] == b["trace"]
        assert a["cells"] == b["cells"]

    def test_simulate_store_writes_trainable_store(self, tmp_path, capsys):
        data = str(tmp_path / "big")
        assert main(
            [
                "simulate", "synthetic",
                "--out", data,
                "--users", "25",
                "--items", "60",
                "--seed", "1",
                "--store",
                "--users-per-shard", "10",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "wrote 25 users" in out
        assert (tmp_path / "big.store" / "manifest.json").exists()
        assert (tmp_path / "big.catalog.jsonl").exists()
        assert (tmp_path / "big.schema.json").exists()
        assert main(
            [
                "fit", data,
                "--levels", "3",
                "--model", str(tmp_path / "m"),
                "--init-min-actions", "5",
                "--max-iterations", "3",
            ]
        ) == 0

    def test_simulate_store_rejects_real_domains(self, tmp_path, capsys):
        assert main(
            ["simulate", "cooking", "--out", str(tmp_path / "c"), "--store"]
        ) == 2
        assert "synthetic domain" in capsys.readouterr().err

    def test_fit_store_rejects_checkpoint_flags(self, tmp_path, capsys):
        data = str(tmp_path / "big")
        assert main(
            ["simulate", "synthetic", "--out", data, "--users", "10",
             "--items", "40", "--store"]
        ) == 0
        capsys.readouterr()
        args = ["fit", data, "--levels", "3", "--model", str(tmp_path / "m")]
        assert main(args + ["--resume"]) == 2
        assert "not supported for store-backed fits" in capsys.readouterr().err
        assert main(args + ["--checkpoint-every", "2"]) == 2
        assert "not supported for store-backed fits" in capsys.readouterr().err

    def test_convert_missing_log_fails_cleanly(self, tmp_path, capsys):
        assert main(
            ["convert", str(tmp_path / "nope"), str(tmp_path / "n.store")]
        ) == 2
        assert "no action log" in capsys.readouterr().err

    def test_inspect_corrupt_store_exits_nonzero(self, tmp_path, capsys):
        data = self._simulate_log(tmp_path)
        store = str(tmp_path / "syn.store")
        assert main(["convert", data, store]) == 0
        victim = tmp_path / "syn.store" / "shard-00000" / "item.npy"
        blob = bytearray(victim.read_bytes())
        blob[-1] ^= 0xFF
        victim.write_bytes(bytes(blob))
        capsys.readouterr()
        assert main(["inspect", store]) == 1
        out = capsys.readouterr().out
        assert "FAILED" in out
        assert "checksum mismatch" in out
