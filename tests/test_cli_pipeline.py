"""Tests for the simulate → fit → score CLI pipeline and schema IO."""

import json

import pytest

from repro.cli import main
from repro.core.features import FeatureKind, FeatureSet, FeatureSpec
from repro.exceptions import ConfigurationError


class TestFeatureSetJson:
    def test_round_trip(self):
        fs = FeatureSet(
            [
                FeatureSpec("a", FeatureKind.CATEGORICAL, vocabulary=("x", "y")),
                FeatureSpec("b", FeatureKind.COUNT),
                FeatureSpec("c", FeatureKind.POSITIVE),
            ]
        )
        restored = FeatureSet.from_json(fs.to_json())
        assert restored.names == fs.names
        assert restored.specs[0].vocabulary == ("x", "y")
        assert restored.specs[1].kind is FeatureKind.COUNT

    def test_json_serializable(self):
        fs = FeatureSet([FeatureSpec("a", FeatureKind.COUNT)])
        json.dumps(fs.to_json())  # must not raise

    def test_malformed_payload(self):
        with pytest.raises(ConfigurationError):
            FeatureSet.from_json([{"name": "a", "kind": "nonsense"}])
        with pytest.raises(ConfigurationError):
            FeatureSet.from_json([{"kind": "count"}])


class TestCliPipeline:
    def test_simulate_fit_score(self, tmp_path, capsys):
        data = str(tmp_path / "cook")
        model = str(tmp_path / "model")
        assert main(
            ["simulate", "cooking", "--out", data, "--users", "60", "--items", "200", "--seed", "2"]
        ) == 0
        assert (tmp_path / "cook.log.jsonl").exists()
        assert (tmp_path / "cook.catalog.jsonl").exists()
        assert (tmp_path / "cook.schema.json").exists()

        assert main(
            [
                "fit", data,
                "--levels", "4",
                "--model", model,
                "--init-min-actions", "10",
                "--max-iterations", "10",
            ]
        ) == 0
        assert (tmp_path / "model.json").exists()
        assert (tmp_path / "model.npz").exists()

        out_file = str(tmp_path / "difficulty.jsonl")
        assert main(["score", model, "--top", "3", "--output", out_file]) == 0
        lines = (tmp_path / "difficulty.jsonl").read_text().strip().splitlines()
        assert len(lines) == 200
        record = json.loads(lines[0])
        assert 1.0 <= record["difficulty"] <= 4.0
        out = capsys.readouterr().out
        assert "fitted in" in out

    def test_simulate_language_has_no_items_knob(self, tmp_path, capsys):
        code = main(
            ["simulate", "language", "--out", str(tmp_path / "x"), "--items", "10"]
        )
        assert code == 2
        assert "no --items knob" in capsys.readouterr().err

    def test_simulate_unknown_domain(self):
        with pytest.raises(SystemExit):
            main(["simulate", "chess", "--out", "x"])

    def test_score_missing_model(self, tmp_path, capsys):
        assert main(["score", str(tmp_path / "nope")]) == 2
        assert "error" in capsys.readouterr().err


class TestCliCheckpointing:
    def _simulate(self, tmp_path):
        data = str(tmp_path / "cook")
        assert main(
            ["simulate", "cooking", "--out", data, "--users", "40", "--items", "120", "--seed", "3"]
        ) == 0
        return data

    def test_fit_writes_checkpoint_and_resume_continues(self, tmp_path, capsys):
        data = self._simulate(tmp_path)
        model = str(tmp_path / "model")
        assert main(
            [
                "fit", data,
                "--levels", "4",
                "--model", model,
                "--init-min-actions", "10",
                "--max-iterations", "2",
                "--checkpoint-every", "1",
            ]
        ) == 0
        ckpt = tmp_path / "model.ckpt.json"
        assert ckpt.exists()
        assert (tmp_path / "model.json").exists()

        # resume from the checkpoint; config (including the iteration cap)
        # comes from the checkpoint, so this re-materializes and re-saves
        assert main(
            ["fit", data, "--levels", "4", "--model", model, "--resume"]
        ) == 0
        out = capsys.readouterr().out
        assert "resuming from" in out
        assert "fitted in" in out

    def test_resume_without_checkpoint_fails_cleanly(self, tmp_path, capsys):
        data = self._simulate(tmp_path)
        model = str(tmp_path / "model")
        assert main(
            ["fit", data, "--levels", "4", "--model", model, "--resume"]
        ) == 2
        assert "no checkpoint" in capsys.readouterr().err
