"""Tests for repro.analysis.metrics."""

import numpy as np
import pytest
from scipy import stats

from repro.analysis.metrics import (
    bootstrap_ci,
    paired_wilcoxon,
    rmse,
    score_estimates,
)
from repro.exceptions import ConfigurationError


class TestRmse:
    def test_known_value(self):
        assert rmse(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == pytest.approx(
            np.sqrt(12.5)
        )

    def test_perfect(self):
        assert rmse(np.array([1.0, 2.0]), np.array([1.0, 2.0])) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            rmse(np.array([1.0]), np.array([1.0, 2.0]))

    def test_empty(self):
        with pytest.raises(ConfigurationError):
            rmse(np.array([]), np.array([]))


class TestScoreEstimates:
    def test_perfect_correlation(self):
        truth = np.array([1.0, 2.0, 3.0, 4.0])
        scores = score_estimates(truth, truth * 2)
        assert scores.pearson == pytest.approx(1.0)
        assert scores.spearman == pytest.approx(1.0)
        assert scores.kendall == pytest.approx(1.0)

    def test_anti_correlation(self):
        truth = np.array([1.0, 2.0, 3.0])
        scores = score_estimates(truth, -truth)
        assert scores.pearson == pytest.approx(-1.0)

    def test_matches_scipy(self):
        rng = np.random.default_rng(0)
        a, b = rng.normal(size=50), rng.normal(size=50)
        scores = score_estimates(a, b)
        assert scores.pearson == pytest.approx(stats.pearsonr(a, b).statistic)
        assert scores.spearman == pytest.approx(stats.spearmanr(a, b).statistic)
        assert scores.kendall == pytest.approx(stats.kendalltau(a, b).statistic)

    def test_constant_estimate_gives_nan(self):
        scores = score_estimates(np.array([1.0, 2.0, 3.0]), np.array([2.0, 2.0, 2.0]))
        assert np.isnan(scores.pearson)

    def test_too_short(self):
        with pytest.raises(ConfigurationError):
            score_estimates(np.array([1.0]), np.array([1.0]))

    def test_as_row(self):
        scores = score_estimates(np.array([1.0, 2.0]), np.array([1.0, 2.0]))
        assert len(scores.as_row()) == 4


class TestBootstrapCI:
    def test_contains_point_estimate(self):
        rng = np.random.default_rng(1)
        truth = rng.normal(size=200)
        estimate = truth + rng.normal(0, 0.5, size=200)
        low, high = bootstrap_ci(truth, estimate, num_resamples=300, seed=0)
        point = stats.pearsonr(truth, estimate).statistic
        assert low <= point <= high
        assert high - low < 0.3

    def test_deterministic(self):
        rng = np.random.default_rng(2)
        a = rng.normal(size=50)
        b = a + rng.normal(0, 1, size=50)
        assert bootstrap_ci(a, b, seed=5) == bootstrap_ci(a, b, seed=5)

    def test_custom_statistic(self):
        a = np.array([1.0, 2.0, 3.0, 4.0] * 10)
        b = a + 1
        low, high = bootstrap_ci(a, b, statistic=lambda t, e: np.mean(e - t), seed=0)
        assert low == pytest.approx(1.0)
        assert high == pytest.approx(1.0)

    def test_bad_confidence(self):
        a = np.array([1.0, 2.0, 3.0])
        with pytest.raises(ConfigurationError):
            bootstrap_ci(a, a, confidence=1.5)


class TestPairedWilcoxon:
    def test_clear_difference_significant(self):
        rng = np.random.default_rng(3)
        base = rng.uniform(1, 2, size=200)
        worse = base + rng.uniform(0.5, 1.0, size=200)
        p, significant = paired_wilcoxon(base, worse)
        assert significant
        assert p < 0.01

    def test_identical_not_significant(self):
        a = np.ones(50)
        p, significant = paired_wilcoxon(a, a)
        assert not significant
        assert p == 1.0

    def test_bonferroni_scales_p(self):
        rng = np.random.default_rng(4)
        a = rng.uniform(size=30)
        b = a + rng.normal(0, 0.3, size=30)
        p1, _ = paired_wilcoxon(a, b, num_comparisons=1)
        p3, _ = paired_wilcoxon(a, b, num_comparisons=3)
        assert p3 == pytest.approx(min(1.0, p1 * 3))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            paired_wilcoxon(np.array([1.0]), np.array([1.0]))
        with pytest.raises(ConfigurationError):
            paired_wilcoxon(np.ones(5), np.ones(5), num_comparisons=0)
