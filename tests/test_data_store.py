"""Tests for the out-of-core columnar action store (repro.data.store).

The store is the disk twin of :class:`~repro.data.actions.ActionLog`:
users bucketed into memmapped column shards under a checksummed manifest.
These tests pin the invariants sharded training relies on — user order
preserved, sequences stored whole and time-sorted, exact round-trips, and
corruption surfacing through ``verify`` instead of silent garbage.
"""

import json

import numpy as np
import pytest

from repro.data.actions import Action, ActionLog
from repro.data.io import iter_actions, save_log
from repro.data.store import (
    ActionStore,
    StoreWriter,
    convert_log_file,
    is_store,
)
from repro.exceptions import ConfigurationError, DataError


def _sample_log(num_users=10, seed=0):
    """A small jagged log with mixed id types and sparse ratings."""
    rng = np.random.default_rng(seed)
    actions = []
    for u in range(num_users):
        user = f"u{u}" if u % 2 else u  # string and integer ids both
        for t in range(int(rng.integers(1, 8))):
            actions.append(
                Action(
                    time=float(t),
                    user=user,
                    item=f"i{int(rng.integers(0, 12))}",
                    rating=float(rng.integers(1, 6)) if rng.random() < 0.3 else None,
                )
            )
    return ActionLog.from_actions(actions)


class TestRoundTrip:
    def test_from_log_round_trips(self, tmp_path):
        log = _sample_log()
        store = ActionStore.from_log(log, tmp_path / "s.store", users_per_shard=3)
        assert store.num_users == log.num_users
        assert store.num_actions == log.num_actions
        back = store.to_log()
        assert list(back.users) == list(log.users)
        for user in log.users:
            a, b = log.sequence(user), back.sequence(user)
            assert a.items == b.items
            assert a.times == b.times
            assert tuple(x.rating for x in a) == tuple(x.rating for x in b)

    def test_iter_actions_streams_in_user_order(self, tmp_path):
        log = _sample_log(num_users=5, seed=1)
        store = ActionStore.from_log(log, tmp_path / "s.store", users_per_shard=2)
        seen = list(store.iter_actions())
        expected = [a for user in log.users for a in log.sequence(user)]
        assert [(a.user, a.item, a.time, a.rating) for a in seen] == [
            (a.user, a.item, a.time, a.rating) for a in expected
        ]

    def test_shard_bucketing(self, tmp_path):
        log = _sample_log(num_users=7)
        store = ActionStore.from_log(log, tmp_path / "s.store", users_per_shard=3)
        assert store.num_shards == 3
        sizes = [store.shard(i).num_users for i in range(store.num_shards)]
        assert sizes == [3, 3, 1]
        assert sum(s.num_actions for s in store.iter_shards()) == log.num_actions

    def test_eager_and_memmap_reads_agree(self, tmp_path):
        log = _sample_log(num_users=4, seed=2)
        store = ActionStore.from_log(log, tmp_path / "s.store", users_per_shard=2)
        for i in range(store.num_shards):
            lazy = store.shard(i)
            eager = store.shard(i, eager=True)
            assert isinstance(lazy.codes, np.memmap)
            assert not isinstance(eager.codes, np.memmap)
            assert np.array_equal(np.asarray(lazy.codes), eager.codes)
            assert np.array_equal(np.asarray(lazy.times), eager.times)


class TestWriter:
    def test_unsorted_times_are_sorted_on_write(self, tmp_path):
        writer = StoreWriter(tmp_path / "s.store")
        writer.add_user("a", [3.0, 1.0, 2.0], item_ids=["x", "y", "z"])
        store = writer.finalize()
        seq = store.to_log().sequence("a")
        assert seq.times == (1.0, 2.0, 3.0)
        assert seq.items == ("y", "z", "x")

    def test_duplicate_user_rejected(self, tmp_path):
        writer = StoreWriter(tmp_path / "s.store")
        writer.add_user("a", [0.0], item_ids=["x"])
        with pytest.raises(DataError, match="grouped by user"):
            writer.add_user("a", [1.0], item_ids=["y"])

    def test_item_codes_path(self, tmp_path):
        writer = StoreWriter(tmp_path / "s.store")
        codes = writer.register_items(["x", "y"])
        writer.add_user("a", [0.0, 1.0], item_codes=codes, presorted=True)
        store = writer.finalize()
        assert store.item_ids == ["x", "y"]
        assert store.to_log().sequence("a").items == ("x", "y")
        with pytest.raises(ConfigurationError):
            StoreWriter(tmp_path / "t.store").add_user(
                "a", [0.0], item_codes=np.array([5])
            )

    def test_exactly_one_item_argument(self, tmp_path):
        writer = StoreWriter(tmp_path / "s.store")
        with pytest.raises(ConfigurationError, match="exactly one"):
            writer.add_user("a", [0.0])

    def test_refuses_committed_store(self, tmp_path):
        path = tmp_path / "s.store"
        writer = StoreWriter(path)
        writer.add_user("a", [0.0], item_ids=["x"])
        writer.finalize()
        with pytest.raises(DataError, match="refusing to overwrite"):
            StoreWriter(path)

    def test_uncommitted_directory_is_not_a_store(self, tmp_path):
        path = tmp_path / "s.store"
        StoreWriter(path).add_user("a", [0.0], item_ids=["x"])
        # No finalize: readers must refuse the half-written directory.
        assert not is_store(path)
        with pytest.raises(DataError, match="not an action store"):
            ActionStore(path)

    def test_max_shard_actions_seals_early(self, tmp_path):
        writer = StoreWriter(
            tmp_path / "s.store", users_per_shard=100, max_shard_actions=5
        )
        for u in range(4):
            writer.add_user(u, np.arange(3.0), item_ids=["x", "y", "z"])
        store = writer.finalize()
        assert store.num_shards > 1
        assert list(store.users()) == [0, 1, 2, 3]


class TestConverter:
    def test_convert_matches_source_log(self, tmp_path):
        log = _sample_log(num_users=9, seed=3)
        log_path = tmp_path / "d.log.jsonl"
        save_log(log, log_path)
        store = convert_log_file(log_path, tmp_path / "d.store", users_per_shard=4)
        assert store.num_users == log.num_users
        back = store.to_log()
        for user in log.users:
            assert back.sequence(user).items == log.sequence(user).items
            assert tuple(a.rating for a in back.sequence(user)) == tuple(
                a.rating for a in log.sequence(user)
            )

    def test_convert_rejects_ungrouped_users(self, tmp_path):
        path = tmp_path / "bad.log.jsonl"
        rows = [
            {"time": 0.0, "user": "a", "item": "x"},
            {"time": 0.0, "user": "b", "item": "x"},
            {"time": 1.0, "user": "a", "item": "y"},
        ]
        path.write_text("".join(json.dumps(r) + "\n" for r in rows))
        with pytest.raises(DataError, match="grouped by user"):
            convert_log_file(path, tmp_path / "bad.store")

    def test_convert_sorts_within_user(self, tmp_path):
        path = tmp_path / "d.log.jsonl"
        rows = [
            {"time": 2.0, "user": "a", "item": "x"},
            {"time": 1.0, "user": "a", "item": "y"},
        ]
        path.write_text("".join(json.dumps(r) + "\n" for r in rows))
        store = convert_log_file(path, tmp_path / "d.store")
        assert store.to_log().sequence("a").items == ("y", "x")


class TestVerify:
    def _store(self, tmp_path):
        return ActionStore.from_log(
            _sample_log(num_users=6, seed=4), tmp_path / "s.store", users_per_shard=2
        )

    def test_clean_store_verifies(self, tmp_path):
        store = self._store(tmp_path)
        shallow = store.verify()
        deep = store.verify(deep=True)
        assert shallow["ok"] and deep["ok"]
        assert deep["files_checked"] == shallow["files_checked"] > 0

    def test_truncation_detected_shallow(self, tmp_path):
        store = self._store(tmp_path)
        victim = store.path / store.manifest["shards"][0]["name"] / "item.npy"
        victim.write_bytes(victim.read_bytes()[:-4])
        report = store.verify()
        assert not report["ok"]
        assert any("item.npy" in p and "bytes" in p for p in report["problems"])

    def test_bitflip_detected_only_deep(self, tmp_path):
        store = self._store(tmp_path)
        victim = store.path / store.manifest["shards"][1]["name"] / "time.npy"
        data = bytearray(victim.read_bytes())
        data[-1] ^= 0xFF  # same size, different content
        victim.write_bytes(bytes(data))
        assert store.verify()["ok"]  # size check cannot see it
        report = store.verify(deep=True)
        assert not report["ok"]
        assert any("checksum mismatch" in p for p in report["problems"])

    def test_missing_file_detected(self, tmp_path):
        store = self._store(tmp_path)
        (store.path / store.manifest["shards"][0]["name"] / "offsets.npy").unlink()
        report = store.verify()
        assert not report["ok"]
        assert any("missing" in p for p in report["problems"])

    def test_tampered_items_file_rejected_on_read(self, tmp_path):
        store = self._store(tmp_path)
        items_path = store.path / "items.json"
        items_path.write_text(items_path.read_text() + " ")
        fresh = ActionStore(store.path)
        with pytest.raises(DataError, match="checksum"):
            fresh.item_ids


class TestIterActionsIO:
    """The streaming reader feeding the converter (repro.data.io)."""

    def test_matches_load_log(self, tmp_path):
        log = _sample_log(num_users=5, seed=5)
        path = tmp_path / "d.log.jsonl"
        save_log(log, path)
        streamed = list(iter_actions(path))
        expected = [a for user in log.users for a in log.sequence(user)]
        assert streamed == expected

    def test_malformed_line_reports_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"time": 0, "user": "a", "item": "x"}\nnope\n')
        with pytest.raises(DataError, match="bad.jsonl:2"):
            list(iter_actions(path))

    def test_large_log_crosses_write_buffer(self, tmp_path):
        # Enough lines that save_log's chunked writer flushes mid-stream;
        # the output must still round-trip exactly.
        actions = [
            Action(time=float(t), user=u, item=f"item-{t % 50}")
            for u in range(40)
            for t in range(60)
        ]
        log = ActionLog.from_actions(actions)
        path = tmp_path / "big.log.jsonl"
        save_log(log, path)
        assert path.stat().st_size > (1 << 16)
        assert list(iter_actions(path)) == actions
