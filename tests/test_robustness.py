"""Failure-injection and pathological-input tests across the pipeline.

Production data is never clean; these tests feed the library the shapes of
input that break naive implementations — degenerate sequences, constant
features, extreme class imbalance, duplicated timestamps — and require
either a correct result or a *typed* error, never a crash or silent
nonsense.
"""

import numpy as np
import pytest

from repro.core.difficulty import assignment_difficulty, generation_difficulty
from repro.core.features import FeatureKind, FeatureSet, FeatureSpec
from repro.core.training import fit_skill_model
from repro.data.actions import Action, ActionLog
from repro.data.items import Item, ItemCatalog
from repro.exceptions import ReproError


def _catalog(num_items=6):
    return ItemCatalog(
        [
            Item(id=f"i{k}", features={"c": k % 2, "n": k, "v": 1.0 + k})
            for k in range(num_items)
        ]
    )


def _features():
    return FeatureSet(
        [
            FeatureSpec("c", FeatureKind.CATEGORICAL),
            FeatureSpec("n", FeatureKind.COUNT),
            FeatureSpec("v", FeatureKind.POSITIVE),
        ]
    )


class TestDegenerateSequences:
    def test_all_users_single_action(self):
        log = ActionLog.from_actions(
            [Action(time=0.0, user=f"u{k}", item=f"i{k % 6}") for k in range(10)]
        )
        model = fit_skill_model(
            log, _catalog(), _features(), 3, init_min_actions=5, max_iterations=10
        )
        # every single-action trajectory is a valid level
        for user in log.users:
            assert 1 <= model.skill_trajectory(user)[0] <= 3

    def test_single_user(self):
        log = ActionLog.from_actions(
            [Action(time=float(t), user="only", item=f"i{t % 6}") for t in range(20)]
        )
        model = fit_skill_model(
            log, _catalog(), _features(), 3, init_min_actions=5, max_iterations=10
        )
        assert len(model.skill_trajectory("only")) == 20

    def test_all_actions_same_item(self):
        log = ActionLog.from_actions(
            [Action(time=float(t), user=f"u{u}", item="i0") for u in range(3) for t in range(8)]
        )
        model = fit_skill_model(
            log, _catalog(), _features(), 3, init_min_actions=5, max_iterations=10
        )
        assert np.isfinite(model.log_likelihood)
        # difficulty of the only item is defined and in range
        estimates = assignment_difficulty(model, log)
        assert 1.0 <= estimates["i0"] <= 3.0

    def test_duplicate_timestamps(self):
        log = ActionLog.from_actions(
            [Action(time=1.0, user="u", item=f"i{k}") for k in range(6)]
        )
        model = fit_skill_model(
            log, _catalog(), _features(), 2, init_min_actions=3, max_iterations=5
        )
        # skill_at with an ambiguous time still answers deterministically
        assert model.skill_at("u", 1.0) in (1, 2)

    def test_more_levels_than_actions(self):
        log = ActionLog.from_actions(
            [Action(time=float(t), user="u", item=f"i{t}") for t in range(3)]
        )
        model = fit_skill_model(
            log, _catalog(), _features(), 10, init_min_actions=2, max_iterations=5
        )
        assert model.skill_trajectory("u").max() <= 10


class TestDegenerateFeatures:
    def test_constant_features_learn_nothing_but_run(self):
        items = [Item(id=f"i{k}", features={"c": 0, "n": 5, "v": 2.0}) for k in range(4)]
        log = ActionLog.from_actions(
            [Action(time=float(t), user=f"u{u}", item=f"i{t % 4}") for u in range(3) for t in range(10)]
        )
        model = fit_skill_model(
            log, ItemCatalog(items), _features(), 3, init_min_actions=5, max_iterations=10
        )
        # indistinguishable levels: generation difficulty collapses to the
        # prior mean, still inside [1, S]
        estimates = generation_difficulty(model)
        for value in estimates.values():
            assert 1.0 <= value <= 3.0

    def test_extreme_category_imbalance(self):
        items = [
            Item(id=f"i{k}", features={"c": 0 if k else 1, "n": k, "v": 1.0 + k})
            for k in range(6)
        ]
        log = ActionLog.from_actions(
            [Action(time=float(t), user="u", item=f"i{t % 6}") for t in range(18)]
        )
        model = fit_skill_model(
            log, ItemCatalog(items), _features(), 2, init_min_actions=5, max_iterations=10
        )
        assert np.isfinite(model.item_score_table()).all()


class TestTypedErrorsOnly:
    """Anything that must fail, fails with a ReproError subclass."""

    @pytest.mark.parametrize(
        "builder",
        [
            lambda: fit_skill_model(
                ActionLog([]), _catalog(), _features(), 2
            ),
            lambda: fit_skill_model(
                ActionLog.from_actions([Action(time=0.0, user="u", item="ghost")]),
                _catalog(),
                _features(),
                2,
            ),
            lambda: _features().encode(
                ItemCatalog([Item(id="x", features={"c": 0, "n": -3, "v": 1.0})])
            ),
        ],
    )
    def test_raises_typed(self, builder):
        with pytest.raises(ReproError):
            builder()


class TestEndToEndAfterRoundTrips:
    def test_save_load_then_extend_then_recommend(self, tmp_path):
        """Chain persistence, fold-in, and recommendation on one model."""
        from repro.core.incremental import extend_model
        from repro.core.serialize import load_model, save_model
        from repro.recsys.upskill import UpskillConfig, UpskillRecommender

        catalog, features = _catalog(8), FeatureSet(
            [
                FeatureSpec("c", FeatureKind.CATEGORICAL),
                FeatureSpec("n", FeatureKind.COUNT),
                FeatureSpec("v", FeatureKind.POSITIVE),
            ]
        ).with_id_feature()
        rng = np.random.default_rng(5)
        log = ActionLog.from_actions(
            [
                Action(time=float(t), user=f"u{u}", item=f"i{int(rng.integers(8))}")
                for u in range(4)
                for t in range(12)
            ]
        )
        model = fit_skill_model(log, catalog, features, 3, init_min_actions=5, max_iterations=10)
        save_model(model, tmp_path / "m")
        loaded = load_model(tmp_path / "m")
        extended, merged = extend_model(
            loaded, log, [Action(time=99.0, user="u0", item="i7")]
        )
        difficulties = generation_difficulty(extended, prior="empirical")
        recommender = UpskillRecommender(
            extended, difficulties, UpskillConfig(exclude_seen=True)
        )
        recs = recommender.recommend("u0", k=3, log=merged)
        assert all(1.0 <= r.difficulty <= 3.0 for r in recs)
