"""Tests for repro.analysis.dominance and interpret."""

import numpy as np
import pytest

from repro.analysis.dominance import dominance_scores, top_dominated
from repro.analysis.interpret import feature_trend, top_items_summary
from repro.exceptions import ConfigurationError


class TestDominance:
    def test_scores_are_probability_gaps(self, fitted_tiny_model):
        entries = dominance_scores(fitted_tiny_model, "color")
        low = fitted_tiny_model.parameters.distribution("color", 1)
        high = fitted_tiny_model.parameters.distribution(
            "color", fitted_tiny_model.num_levels
        )
        vocab = fitted_tiny_model.encoded.vocabulary("color")
        for entry in entries:
            code = vocab.index(entry.value)
            assert entry.score == pytest.approx(high.probs[code] - low.probs[code])

    def test_scores_sum_to_zero(self, fitted_tiny_model):
        entries = dominance_scores(fitted_tiny_model, "color")
        assert sum(e.score for e in entries) == pytest.approx(0.0, abs=1e-9)

    def test_non_categorical_rejected(self, fitted_tiny_model):
        with pytest.raises(ConfigurationError):
            dominance_scores(fitted_tiny_model, "weight")

    def test_top_dominated_split(self, fitted_tiny_model):
        unskilled, skilled = top_dominated(fitted_tiny_model, "color", k=3)
        assert all(e.score < 0 for e in unskilled)
        assert all(e.score > 0 for e in skilled)
        # ordering: most extreme first on each side
        if len(unskilled) > 1:
            assert unskilled[0].score <= unskilled[1].score
        if len(skilled) > 1:
            assert skilled[0].score >= skilled[1].score

    def test_k_validation(self, fitted_tiny_model):
        with pytest.raises(ConfigurationError):
            top_dominated(fitted_tiny_model, "color", k=0)

    def test_planted_signal_recovered(self):
        """On the language simulator, the planted rule gradient must come
        out of the fitted model's dominance ranking."""
        from repro.core.training import fit_skill_model
        from repro.synth import LanguageConfig, generate_language

        ds = generate_language(LanguageConfig(num_users=200, seed=4))
        model = fit_skill_model(
            ds.log, ds.catalog, ds.feature_set, 3, init_min_actions=10, max_iterations=20
        )
        unskilled, skilled = top_dominated(model, "rule", k=10)
        assert any(e.value == '"i"→"I"' for e in unskilled)
        assert any(e.value == 'ε→"the"' for e in skilled)


class TestInterpret:
    def test_feature_trend_shapes(self, fitted_tiny_model):
        trend = feature_trend(fitted_tiny_model, "steps")
        assert len(trend.means) == fitted_tiny_model.num_levels
        assert trend.spread == pytest.approx(max(trend.means) - min(trend.means))

    def test_trend_flags(self):
        from repro.analysis.interpret import LevelTrend

        assert LevelTrend("x", (1.0, 2.0, 3.0)).increasing
        assert not LevelTrend("x", (1.0, 2.0, 3.0)).decreasing
        assert LevelTrend("x", (3.0, 2.0, 1.0)).decreasing
        assert not LevelTrend("x", (1.0, 3.0, 2.0)).increasing

    def test_top_items_summary(self, fitted_tiny_model, tiny_catalog):
        summary = top_items_summary(
            fitted_tiny_model, 1, 5, catalog=tiny_catalog, metadata_keys=("difficulty",)
        )
        assert summary.level == 1
        assert len(summary.items) == 5
        assert "difficulty" in summary.mean_metadata
        assert 1.0 <= summary.mean_metadata["difficulty"] <= 3.0

    def test_metadata_requires_catalog(self, fitted_tiny_model):
        with pytest.raises(ConfigurationError):
            top_items_summary(fitted_tiny_model, 1, 5, metadata_keys=("difficulty",))

    def test_missing_metadata_key_gives_nan(self, fitted_tiny_model, tiny_catalog):
        summary = top_items_summary(
            fitted_tiny_model, 1, 3, catalog=tiny_catalog, metadata_keys=("ghost",)
        )
        assert np.isnan(summary.mean_metadata["ghost"])
