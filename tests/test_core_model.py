"""Tests for repro.core.model: parameter grid, scoring, fitted-model API."""

import numpy as np
import pytest

from repro.core.distributions import Categorical, Gamma, Poisson
from repro.core.features import ID_FEATURE, FeatureKind, FeatureSet, FeatureSpec
from repro.core.model import SkillParameters
from repro.data.items import Item, ItemCatalog
from repro.exceptions import ConfigurationError, DataError, NotFittedError


@pytest.fixture
def encoded(tiny_catalog, tiny_feature_set):
    return tiny_feature_set.encode(tiny_catalog)


def _uniform_parameters(encoded, num_levels=3):
    rows = np.arange(encoded.num_items)
    levels = rows % num_levels
    return SkillParameters.fit_from_assignments(
        encoded, rows, levels, num_levels=num_levels
    )


class TestSkillParameters:
    def test_fit_produces_right_cell_types(self, encoded):
        params = _uniform_parameters(encoded)
        assert isinstance(params.distribution("color", 1), Categorical)
        assert isinstance(params.distribution("steps", 1), Poisson)
        assert isinstance(params.distribution("weight", 1), Gamma)

    def test_distribution_level_bounds(self, encoded):
        params = _uniform_parameters(encoded)
        with pytest.raises(ConfigurationError):
            params.distribution("color", 0)
        with pytest.raises(ConfigurationError):
            params.distribution("color", 4)

    def test_score_table_shape_and_finiteness(self, encoded):
        params = _uniform_parameters(encoded)
        table = params.item_score_table(encoded)
        assert table.shape == (3, encoded.num_items)
        assert np.all(np.isfinite(table))

    def test_score_table_is_sum_of_feature_scores(self, encoded, tiny_feature_set):
        params = _uniform_parameters(encoded)
        table = params.item_score_table(encoded)
        manual = np.zeros_like(table)
        for s in range(3):
            for f, _spec in enumerate(tiny_feature_set):
                manual[s] += params.cells[s][f].log_prob(encoded.columns[f])
        np.testing.assert_allclose(table, manual)

    def test_misaligned_levels_rejected(self, encoded):
        rows = np.arange(encoded.num_items)
        with pytest.raises(ConfigurationError):
            SkillParameters.fit_from_assignments(
                encoded, rows, np.zeros(3, dtype=int), num_levels=2
            )

    def test_level_out_of_range_rejected(self, encoded):
        rows = np.arange(encoded.num_items)
        with pytest.raises(ConfigurationError):
            SkillParameters.fit_from_assignments(
                encoded, rows, np.full(len(rows), 5), num_levels=3
            )

    def test_empty_level_gets_default_cells(self, encoded):
        """Levels with no assigned actions stay well-defined (smoothing)."""
        rows = np.arange(encoded.num_items)
        levels = np.zeros(len(rows), dtype=int)  # everything at level 1
        params = SkillParameters.fit_from_assignments(
            encoded, rows, levels, num_levels=3
        )
        table = params.item_score_table(encoded)
        assert np.all(np.isfinite(table))

    def test_soft_responsibilities_match_hard_when_degenerate(self, encoded):
        rows = np.arange(encoded.num_items)
        levels = rows % 3
        hard = SkillParameters.fit_from_assignments(encoded, rows, levels, num_levels=3)
        resp = np.zeros((len(rows), 3))
        resp[np.arange(len(rows)), levels] = 1.0
        soft = SkillParameters.fit_from_responsibilities(encoded, rows, resp)
        np.testing.assert_allclose(
            hard.item_score_table(encoded), soft.item_score_table(encoded), rtol=1e-8
        )


class TestSkillModelAPI:
    def test_trajectories_are_one_based_and_monotone(self, fitted_tiny_model, tiny_log):
        for seq in tiny_log:
            traj = fitted_tiny_model.skill_trajectory(seq.user)
            assert len(traj) == len(seq)
            assert traj.min() >= 1
            assert traj.max() <= fitted_tiny_model.num_levels
            assert np.all(np.diff(traj) >= 0)

    def test_unknown_user(self, fitted_tiny_model):
        with pytest.raises(DataError):
            fitted_tiny_model.skill_trajectory("ghost")

    def test_skill_at_uses_nearest_action(self, fitted_tiny_model):
        traj = fitted_tiny_model.skill_trajectory("u0")
        assert fitted_tiny_model.skill_at("u0", -100.0) == traj[0]
        assert fitted_tiny_model.skill_at("u0", 1e9) == traj[-1]

    def test_empirical_prior_sums_to_one(self, fitted_tiny_model):
        prior = fitted_tiny_model.empirical_skill_prior()
        assert prior.shape == (3,)
        assert prior.sum() == pytest.approx(1.0)

    def test_posterior_rows_sum_to_one(self, fitted_tiny_model):
        posterior = fitted_tiny_model.posterior_skill_given_item()
        assert posterior.shape == (12, 3)
        np.testing.assert_allclose(posterior.sum(axis=1), 1.0)

    def test_posterior_with_explicit_prior(self, fitted_tiny_model):
        prior = np.array([0.8, 0.1, 0.1])
        posterior = fitted_tiny_model.posterior_skill_given_item(prior=prior)
        np.testing.assert_allclose(posterior.sum(axis=1), 1.0)

    def test_posterior_prior_validation(self, fitted_tiny_model):
        with pytest.raises(ConfigurationError):
            fitted_tiny_model.posterior_skill_given_item(prior=np.array([0.5, 0.5]))
        with pytest.raises(ConfigurationError):
            fitted_tiny_model.posterior_skill_given_item(prior=np.array([0.5, 0.6, -0.1]))

    def test_degenerate_prior_zeroes_level(self, fitted_tiny_model):
        """A zero prior mass on a level forces zero posterior there."""
        prior = np.array([0.0, 0.5, 0.5])
        posterior = fitted_tiny_model.posterior_skill_given_item(prior=prior)
        np.testing.assert_allclose(posterior[:, 0], 0.0)

    def test_top_items_ordering(self, fitted_tiny_model):
        top = fitted_tiny_model.top_items(1, 5)
        probs = [p for _, p in top]
        assert probs == sorted(probs, reverse=True)
        assert len(top) == 5

    def test_item_probabilities_requires_id_feature(
        self, tiny_log, tiny_catalog, tiny_feature_set
    ):
        from repro.core.training import fit_skill_model

        model = fit_skill_model(
            tiny_log, tiny_catalog, tiny_feature_set, 2, init_min_actions=5, max_iterations=5
        )
        with pytest.raises(ConfigurationError):
            model.item_probabilities(1)

    def test_feature_level_means_shapes(self, fitted_tiny_model):
        means = fitted_tiny_model.feature_level_means("steps")
        assert len(means) == 3
        assert all(m >= 0 for m in means)

    def test_log_likelihood_accessor(self, fitted_tiny_model):
        assert fitted_tiny_model.log_likelihood == fitted_tiny_model.trace.log_likelihoods[-1]

    def test_evaluate_log_likelihood(self, fitted_tiny_model, tiny_log):
        ll = fitted_tiny_model.evaluate_log_likelihood(
            tiny_log, fitted_tiny_model.skill_at
        )
        assert np.isfinite(ll)
        # scoring the training data at assigned levels should be close to
        # (and for identical lookups exactly) the training LL
        assert ll == pytest.approx(fitted_tiny_model.log_likelihood, rel=0.05)

    def test_score_items_on_new_catalog(self, tiny_log, tiny_catalog, tiny_feature_set):
        """Scoring unseen items needs a model over shared features only —
        an ID-bearing model has no parameter for a fresh id."""
        from repro.core.training import fit_skill_model

        model = fit_skill_model(
            tiny_log, tiny_catalog, tiny_feature_set, 3, init_min_actions=5, max_iterations=10
        )
        new_items = ItemCatalog(
            [Item(id="new", features={"color": "red", "steps": 2, "weight": 3.0})]
        )
        encoded = model.feature_set.encode(new_items)
        scores = model.score_items(encoded)
        assert scores.shape == (3, 1)
        assert np.all(np.isfinite(scores))


class TestTrainingTrace:
    def test_empty_trace_raises(self):
        from repro.core.model import TrainingTrace

        trace = TrainingTrace(log_likelihoods=(), converged=False, num_iterations=0)
        with pytest.raises(NotFittedError):
            trace.final_log_likelihood
