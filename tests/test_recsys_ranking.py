"""Tests for repro.recsys.ranking (item-prediction protocol)."""

import numpy as np
import pytest

from repro.core.training import fit_skill_model
from repro.data.splits import holdout_last_position, holdout_random_position
from repro.exceptions import DataError
from repro.recsys.ranking import ItemPredictionResult, predict_items, random_guess_expectation


@pytest.fixture
def split_and_model(tiny_log, tiny_catalog, tiny_feature_set):
    train, held = holdout_last_position(tiny_log)
    model = fit_skill_model(
        train,
        tiny_catalog,
        tiny_feature_set.with_id_feature(),
        3,
        init_min_actions=5,
        max_iterations=15,
    )
    return model, held


class TestPredictItems:
    def test_result_shape(self, split_and_model):
        model, held = split_and_model
        result = predict_items(model, held)
        assert len(result.ranks) == len(held)
        assert result.num_items == 12

    def test_rank_bounds(self, split_and_model):
        model, held = split_and_model
        result = predict_items(model, held)
        assert np.all(result.ranks >= 1)
        assert np.all(result.ranks <= result.num_items)

    def test_measures_consistent_with_ranks(self, split_and_model):
        model, held = split_and_model
        result = predict_items(model, held)
        assert result.acc_at_10 == pytest.approx(np.mean(result.ranks <= 10))
        assert result.mean_reciprocal_rank == pytest.approx(
            np.mean(1.0 / result.ranks)
        )
        np.testing.assert_allclose(result.reciprocal_ranks, 1.0 / result.ranks)

    def test_accuracy_at_k_monotone_in_k(self, split_and_model):
        model, held = split_and_model
        result = predict_items(model, held)
        accs = [result.accuracy_at(k) for k in (1, 3, 5, 10, 12)]
        assert accs == sorted(accs)
        assert result.accuracy_at(12) == 1.0  # everything ranks within |I|

    def test_empty_held_rejected(self, split_and_model):
        model, _ = split_and_model
        with pytest.raises(DataError):
            predict_items(model, [])

    def test_mid_rank_tie_handling(self):
        """With identical probabilities the mid-rank must be (|I|+1)/2."""
        ranks = np.array([(12 + 1) / 2])
        result = ItemPredictionResult(ranks=ranks, num_items=12)
        assert result.mean_reciprocal_rank == pytest.approx(2 / 13)

    def test_vectorized_ranks_match_counting_reference(self, split_and_model):
        """The sort + searchsorted ranking must reproduce, bit for bit, the
        per-action counting definition of the mid-rank — including on the
        tied probabilities that dominate smoothed categoricals."""
        model, held = split_and_model
        result = predict_items(model, held)
        vocab = model.encoded.vocabulary("__item_id__")
        code_of = {item_id: code for code, item_id in enumerate(vocab)}
        saw_tie = False
        for pos, held_action in enumerate(held):
            action = held_action.action
            probs = model.item_probabilities(
                int(model.skill_at(action.user, action.time))
            )
            p = probs[code_of[action.item]]
            greater = int(np.sum(probs > p))
            equal = int(np.sum(probs == p))
            saw_tie = saw_tie or equal > 1
            assert result.ranks[pos] == greater + (equal + 1) / 2.0
        # The fixture must actually exercise the tie path.
        assert saw_tie

    def test_random_split_protocol(self, tiny_log, tiny_catalog, tiny_feature_set):
        train, held = holdout_random_position(tiny_log, np.random.default_rng(0))
        model = fit_skill_model(
            train,
            tiny_catalog,
            tiny_feature_set.with_id_feature(),
            2,
            init_min_actions=5,
            max_iterations=10,
        )
        result = predict_items(model, held)
        assert len(result.ranks) == len(held)


class TestRandomGuess:
    def test_formulas(self):
        acc, rr = random_guess_expectation(100, k=10)
        assert acc == pytest.approx(0.1)
        assert rr == pytest.approx(np.sum(1.0 / np.arange(1, 101)) / 100)

    def test_small_catalog(self):
        acc, _ = random_guess_expectation(5, k=10)
        assert acc == 1.0

    def test_invalid(self):
        with pytest.raises(DataError):
            random_guess_expectation(0)

    def test_model_beats_random_on_skewed_data(self):
        """A popularity-skewed domain must be predictable above chance."""
        from repro.synth import CookingConfig, generate_cooking

        ds = generate_cooking(CookingConfig(num_users=120, num_items=300, seed=3))
        train, held = holdout_random_position(ds.log, np.random.default_rng(1))
        model = fit_skill_model(
            train, ds.catalog, ds.feature_set, 5, init_min_actions=10, max_iterations=15
        )
        result = predict_items(model, held)
        random_acc, random_rr = random_guess_expectation(len(ds.catalog))
        assert result.acc_at_10 > 2 * random_acc
        assert result.mean_reciprocal_rank > 2 * random_rr
