"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "table6"])
        assert args.experiment == "table6"
        assert args.scale == "small"

    def test_scale_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "table6", "--scale", "huge"])

    def test_fit_checkpoint_flags(self):
        args = build_parser().parse_args(
            ["fit", "data", "--levels", "4", "--model", "m", "--checkpoint-every", "5"]
        )
        assert args.checkpoint_every == 5
        assert args.resume is False
        args = build_parser().parse_args(
            ["fit", "data", "--levels", "4", "--model", "m", "--resume"]
        )
        assert args.resume is True
        assert args.checkpoint_every == 0

    def test_obs_flags_on_fit_and_run(self):
        args = build_parser().parse_args(
            [
                "fit", "data", "--levels", "4", "--model", "m",
                "--log-level", "INFO", "--log-json", "--metrics-out", "metrics.json",
            ]
        )
        assert args.log_level == "INFO"
        assert args.log_json is True
        assert args.metrics_out == "metrics.json"
        args = build_parser().parse_args(
            ["run", "table13", "--log-json", "--metrics-out", "m.json"]
        )
        assert args.log_json is True
        assert args.metrics_out == "m.json"

    def test_obs_flags_default_off(self):
        args = build_parser().parse_args(["run", "table6"])
        assert args.log_level is None
        assert args.log_json is False
        assert args.metrics_out is None

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve", "models/cooking"])
        assert args.model == "models/cooking"
        assert args.host == "127.0.0.1"
        assert args.port == 8080
        assert args.max_batch == 64
        assert args.max_wait_ms == 2.0
        assert args.max_queue == 256
        assert args.timeout == 5.0
        assert args.poll_seconds == 1.0
        assert args.log_level is None  # obs flags ride along

    def test_serve_knobs(self):
        args = build_parser().parse_args(
            [
                "serve", "m", "--port", "0", "--max-batch", "1",
                "--max-wait-ms", "0", "--max-queue", "16",
                "--timeout", "1.5", "--poll-seconds", "0.1",
            ]
        )
        assert args.port == 0
        assert args.max_batch == 1
        assert args.max_wait_ms == 0.0
        assert args.max_queue == 16
        assert args.timeout == 1.5
        assert args.poll_seconds == 0.1


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table6" in out
        assert "fig7" in out

    def test_run_single(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "PASS" in out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "table99"]) == 2
        assert "error" in capsys.readouterr().err

    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        assert "beer" in capsys.readouterr().out


class TestExceptionHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        from repro import exceptions

        for name in exceptions.__all__:
            cls = getattr(exceptions, name)
            assert issubclass(cls, exceptions.ReproError)

    def test_schema_error_is_data_error(self):
        from repro.exceptions import DataError, SchemaError

        assert issubclass(SchemaError, DataError)

    def test_package_exports(self):
        import repro

        assert repro.__version__
        for name in repro.__all__:
            assert hasattr(repro, name), name
