"""Tests for repro.core.soft_em (the EM ablation trainer)."""

import numpy as np
import pytest

from repro.core.soft_em import SoftEMConfig, fit_soft_em, forward_backward
from repro.data.actions import ActionLog
from repro.exceptions import ConfigurationError, DataError


class TestForwardBackward:
    def test_responsibilities_normalized(self):
        rng = np.random.default_rng(0)
        emissions = rng.normal(size=(20, 4))
        gamma, ll = forward_backward(emissions, step_up_prob=0.1)
        assert gamma.shape == (20, 4)
        np.testing.assert_allclose(gamma.sum(axis=1), 1.0, rtol=1e-10)
        assert np.isfinite(ll)

    def test_empty_sequence(self):
        gamma, ll = forward_backward(np.empty((0, 3)), 0.1)
        assert gamma.shape == (0, 3)
        assert ll == 0.0

    def test_single_action_posterior_is_softmax(self):
        emissions = np.array([[0.0, 1.0, 2.0]])
        gamma, ll = forward_backward(emissions, 0.1)
        expected = np.exp(emissions[0]) / np.exp(emissions[0]).sum()
        # uniform init cancels in the posterior of a single action
        np.testing.assert_allclose(gamma[0], expected, rtol=1e-10)

    def test_log_likelihood_matches_brute_force(self):
        """Sum over all monotone paths with stay/up weights, tiny case."""
        rng = np.random.default_rng(1)
        n, S, q = 4, 3, 0.2
        emissions = rng.normal(size=(n, S))

        import itertools

        total = -np.inf
        for start in range(S):
            for steps in itertools.product((0, 1), repeat=n - 1):
                levels = np.cumsum((start,) + steps)
                if levels[-1] >= S:
                    continue
                logp = -np.log(S) + emissions[np.arange(n), levels].sum()
                for t, step in enumerate(steps):
                    at_top = levels[t] == S - 1
                    if at_top:
                        # at the cap all mass stays (stay + up folded)
                        logp += 0.0
                    else:
                        logp += np.log(q) if step else np.log1p(-q)
                total = np.logaddexp(total, logp)
        _, ll = forward_backward(emissions, q)
        assert ll == pytest.approx(total)

    def test_monotone_support_only(self):
        """Mass on level decreases is impossible: with emissions forcing
        level 2 early, level 1 late must have ~zero posterior."""
        emissions = np.full((3, 3), -50.0)
        emissions[0, 2] = 0.0  # first action almost surely level 3
        gamma, _ = forward_backward(emissions, 0.1)
        # posterior for later actions cannot drop below level 3
        assert gamma[2, 0] < 1e-8
        assert gamma[2, 1] < 1e-8


class TestFitSoftEM:
    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            SoftEMConfig(num_levels=0)
        with pytest.raises(ConfigurationError):
            SoftEMConfig(num_levels=3, step_up_prob=0.0)
        with pytest.raises(ConfigurationError):
            SoftEMConfig(num_levels=3, max_iterations=0)

    def test_empty_log_rejected(self, tiny_catalog, tiny_feature_set):
        with pytest.raises(DataError):
            fit_soft_em(
                ActionLog([]), tiny_catalog, tiny_feature_set, SoftEMConfig(num_levels=2)
            )

    def test_log_likelihood_monotone(self, tiny_log, tiny_catalog, tiny_feature_set):
        model = fit_soft_em(
            tiny_log,
            tiny_catalog,
            tiny_feature_set,
            SoftEMConfig(num_levels=3, init_min_actions=5, max_iterations=20),
        )
        lls = np.asarray(model.trace.log_likelihoods)
        assert np.all(np.diff(lls) >= -1e-6 * np.abs(lls[:-1]))

    def test_produces_comparable_model(self, tiny_log, tiny_catalog, tiny_feature_set):
        model = fit_soft_em(
            tiny_log,
            tiny_catalog,
            tiny_feature_set,
            SoftEMConfig(num_levels=3, init_min_actions=5, max_iterations=20),
        )
        assert set(model.assignments) == set(tiny_log.users)
        levels = model.all_assigned_levels()
        assert levels.min() >= 1 and levels.max() <= 3
        # the full SkillModel API works on EM output too
        assert model.empirical_skill_prior().sum() == pytest.approx(1.0)

    def test_comparable_accuracy_to_hard(self):
        """On planted data, EM and hard assignment should land in the same
        accuracy ballpark (the paper: 'comparable fitting quality')."""
        from repro.core.training import fit_skill_model
        from repro.synth import SyntheticConfig, generate_synthetic

        ds = generate_synthetic(SyntheticConfig(num_users=60, num_items=300, seed=8))
        hard = fit_skill_model(
            ds.log, ds.catalog, ds.feature_set, 5, init_min_actions=30, max_iterations=15
        )
        soft = fit_soft_em(
            ds.log,
            ds.catalog,
            ds.feature_set,
            SoftEMConfig(num_levels=5, init_min_actions=30, max_iterations=15),
        )
        truth = ds.true_skill_array()
        r_hard = np.corrcoef(truth, hard.all_assigned_levels())[0, 1]
        r_soft = np.corrcoef(truth, soft.all_assigned_levels())[0, 1]
        assert r_soft > 0.5 * r_hard
