"""Tests for repro.core.difficulty: all three estimators."""

import numpy as np
import pytest
from repro.core.difficulty import (
    PRIOR_EMPIRICAL,
    PRIOR_UNIFORM,
    assignment_difficulty,
    difficulty_array,
    generation_difficulty,
)
from repro.data.actions import Action, ActionLog
from repro.exceptions import ConfigurationError, DataError


class TestAssignmentDifficulty:
    def test_bounds(self, fitted_tiny_model, tiny_log):
        estimates = assignment_difficulty(fitted_tiny_model, tiny_log)
        for value in estimates.values():
            assert 1.0 <= value <= fitted_tiny_model.num_levels

    def test_matches_equation8_by_hand(self, fitted_tiny_model, tiny_log):
        estimates = assignment_difficulty(fitted_tiny_model, tiny_log)
        # recompute for one item by hand
        item = next(iter(estimates))
        total, count = 0.0, 0
        for seq in tiny_log:
            levels = fitted_tiny_model.skill_trajectory(seq.user)
            for action, level in zip(seq, levels):
                if action.item == item:
                    total += level
                    count += 1
        assert estimates[item] == pytest.approx(total / count)

    def test_vectorized_matches_dict_loop_exactly(self, fitted_tiny_model, tiny_log):
        """The bincount implementation accumulates each item's levels in
        log order, so every estimate must equal the naive dict-of-sums
        loop to the last bit — not just approximately."""
        estimates = assignment_difficulty(fitted_tiny_model, tiny_log)
        sums: dict = {}
        counts: dict = {}
        for seq in tiny_log:
            levels = fitted_tiny_model.skill_trajectory(seq.user)
            for action, level in zip(seq, levels):
                sums[action.item] = sums.get(action.item, 0.0) + float(level)
                counts[action.item] = counts.get(action.item, 0) + 1
        expected = {item: sums[item] / counts[item] for item in sums}
        assert set(estimates) == set(expected)
        for item in expected:
            assert estimates[item] == expected[item]

    def test_only_selected_items_estimated(self, fitted_tiny_model, tiny_log):
        estimates = assignment_difficulty(fitted_tiny_model, tiny_log)
        assert set(estimates) == set(tiny_log.selected_items)

    def test_misaligned_log_rejected(self, fitted_tiny_model):
        other = ActionLog.from_actions(
            [Action(time=0.0, user="u0", item="i0")]  # u0 has more training actions
        )
        with pytest.raises(DataError):
            assignment_difficulty(fitted_tiny_model, other)


class TestGenerationDifficulty:
    def test_bounds_uniform_and_empirical(self, fitted_tiny_model):
        for prior in (PRIOR_UNIFORM, PRIOR_EMPIRICAL):
            estimates = generation_difficulty(fitted_tiny_model, prior=prior)
            assert len(estimates) == fitted_tiny_model.encoded.num_items
            for value in estimates.values():
                assert 1.0 <= value <= fitted_tiny_model.num_levels

    def test_explicit_prior_vector(self, fitted_tiny_model):
        prior = np.array([1.0, 0.0, 0.0])
        estimates = generation_difficulty(fitted_tiny_model, prior=prior)
        # all posterior mass at level 1 → every difficulty is exactly 1
        for value in estimates.values():
            assert value == pytest.approx(1.0)

    def test_unknown_prior_name(self, fitted_tiny_model):
        with pytest.raises(ConfigurationError):
            generation_difficulty(fitted_tiny_model, prior="bogus")

    def test_expected_value_matches_posterior(self, fitted_tiny_model):
        estimates = generation_difficulty(fitted_tiny_model, prior=PRIOR_UNIFORM)
        posterior = fitted_tiny_model.posterior_skill_given_item()
        levels = np.arange(1, fitted_tiny_model.num_levels + 1)
        expected = posterior @ levels
        values = np.asarray(
            [estimates[i] for i in fitted_tiny_model.encoded.item_ids]
        )
        np.testing.assert_allclose(values, expected)

    def test_covers_never_selected_items(self, tiny_catalog, tiny_feature_set):
        """Generation-based estimates exist for items with zero actions —
        the paper's motivating advantage over assignment-based ones."""
        from repro.core.training import fit_skill_model

        actions = [
            Action(time=float(t), user="u", item=f"i{t % 3}") for t in range(12)
        ]
        log = ActionLog.from_actions(actions)  # only items i0..i2 selected
        model = fit_skill_model(
            log, tiny_catalog, tiny_feature_set, 2, init_min_actions=5, max_iterations=10
        )
        estimates = generation_difficulty(model)
        assert "i11" in estimates  # never selected, still estimated


class TestDifficultyArray:
    def test_alignment(self, fitted_tiny_model):
        estimates = generation_difficulty(fitted_tiny_model)
        ids = list(fitted_tiny_model.encoded.item_ids)[:5]
        values = difficulty_array(estimates, ids)
        assert values.shape == (5,)
        assert values[0] == estimates[ids[0]]

    def test_missing_estimate_raises(self):
        with pytest.raises(DataError):
            difficulty_array({"a": 1.0}, ["a", "b"])


@pytest.mark.parametrize("seed", range(12))
def test_difficulty_always_in_range_property(seed, fitted_tiny_model):
    """Property: any valid prior keeps difficulties inside [1, S]."""
    rng = np.random.default_rng(seed)
    prior = rng.dirichlet(np.ones(fitted_tiny_model.num_levels))
    estimates = generation_difficulty(fitted_tiny_model, prior=prior)
    values = np.asarray(list(estimates.values()))
    assert np.all(values >= 1.0 - 1e-9)
    assert np.all(values <= fitted_tiny_model.num_levels + 1e-9)
