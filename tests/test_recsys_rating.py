"""Tests for repro.recsys.rating (Table XII harness)."""

import numpy as np
import pytest

from repro.core.difficulty import generation_difficulty
from repro.core.training import fit_skill_model
from repro.data.actions import Action, ActionLog
from repro.exceptions import ConfigurationError, DataError
from repro.recsys.ffm import FFMConfig
from repro.recsys.rating import VARIANTS, build_instances, run_rating_task
from repro.synth import BeerConfig, generate_beer


@pytest.fixture(scope="module")
def beer_ds():
    return generate_beer(
        BeerConfig(num_users=40, num_items=150, mean_sequence_length=30, seed=2)
    )


class TestBuildInstances:
    def test_instances_carry_side_information(self, beer_ds):
        model = fit_skill_model(
            beer_ds.log, beer_ds.catalog, beer_ds.feature_set, 5,
            init_min_actions=10, max_iterations=10,
        )
        difficulties = generation_difficulty(model)
        actions = list(beer_ds.log.actions())[:20]
        instances = build_instances(actions, model, difficulties)
        assert len(instances) == 20
        for inst in instances:
            assert 1 <= inst.skill <= 5
            assert 1.0 <= inst.difficulty <= 5.0

    def test_unrated_action_rejected(self, beer_ds):
        model = fit_skill_model(
            beer_ds.log, beer_ds.catalog, beer_ds.feature_set, 5,
            init_min_actions=10, max_iterations=5,
        )
        difficulties = generation_difficulty(model)
        unrated = Action(time=0.0, user=beer_ds.log.users[0], item=list(beer_ds.catalog.ids)[0])
        with pytest.raises(DataError):
            build_instances([unrated], model, difficulties)


class TestRunRatingTask:
    def test_all_variants_reported(self, beer_ds):
        result = run_rating_task(
            beer_ds.log, beer_ds.catalog, beer_ds.feature_set, 5,
            holdout="random", seed=0,
            ffm_config=FFMConfig(epochs=4, num_factors=4),
            init_min_actions=10, max_iterations=10,
        )
        assert set(result.rmse) == set(VARIANTS)
        for value in result.rmse.values():
            assert 0.0 <= value <= 5.0
        for errors in result.squared_errors.values():
            assert np.all(errors >= 0)

    def test_variant_subset(self, beer_ds):
        result = run_rating_task(
            beer_ds.log, beer_ds.catalog, beer_ds.feature_set, 5,
            holdout="last", variants=("U+I",), seed=0,
            ffm_config=FFMConfig(epochs=3, num_factors=4),
            init_min_actions=10, max_iterations=5,
        )
        assert set(result.rmse) == {"U+I"}
        assert result.holdout == "last"

    def test_unknown_variant(self, beer_ds):
        with pytest.raises(ConfigurationError):
            run_rating_task(
                beer_ds.log, beer_ds.catalog, beer_ds.feature_set, 5,
                variants=("U+I+X",),
            )

    def test_unknown_holdout(self, beer_ds):
        with pytest.raises(ConfigurationError):
            run_rating_task(
                beer_ds.log, beer_ds.catalog, beer_ds.feature_set, 5, holdout="middle"
            )

    def test_unrated_log_rejected(self, tiny_log, tiny_catalog, tiny_feature_set):
        with pytest.raises(DataError):
            run_rating_task(
                tiny_log,
                tiny_catalog,
                tiny_feature_set.with_id_feature(),
                2,
                init_min_actions=5,
                max_iterations=3,
            )
