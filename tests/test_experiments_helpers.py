"""Tests for the experiment-layer helper machinery.

The experiments themselves are exercised by the benchmark suite; these
tests pin the *helpers* they share — the model-ladder builder, rare-item
RMSE, the prediction-results cache — at unit scale so a regression there
fails fast instead of surfacing as a mysteriously wrong table.
"""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.experiments import accuracy
from repro.experiments.datasets import NUM_LEVELS, dataset, fitted_model


class TestDatasetsHelpers:
    def test_num_levels_covers_all_domains(self):
        for name in ("language", "cooking", "beer", "film", "synthetic", "synthetic_dense"):
            assert NUM_LEVELS[name] >= 3

    def test_fitted_model_cache_key_includes_kwargs(self):
        a = fitted_model("language", "small", init_min_actions=15, max_iterations=5)
        b = fitted_model("language", "small", init_min_actions=15, max_iterations=5)
        c = fitted_model("language", "small", init_min_actions=15, max_iterations=6)
        assert a is b
        assert a is not c


class TestAccuracyHelpers:
    @pytest.fixture(scope="class")
    def suite_and_ds(self):
        ds = dataset("synthetic", "small")
        suite = accuracy.skill_model_suite("synthetic", "small")
        return ds, suite

    def test_suite_contains_full_ladder(self, suite_and_ds):
        _, suite = suite_and_ds
        assert set(suite) == set(accuracy.SKILL_MODELS)

    def test_skill_accuracy_ladder_order(self, suite_and_ds):
        ds, suite = suite_and_ds
        uniform = accuracy.skill_accuracy(ds, suite["Uniform"]).pearson
        multi = accuracy.skill_accuracy(ds, suite["Multi-faceted"]).pearson
        assert multi > uniform

    def test_difficulty_accuracy_methods(self, suite_and_ds):
        ds, suite = suite_and_ds
        for method in ("Assignment", "Uniform", "Empirical"):
            scores, estimates = accuracy.difficulty_accuracy(
                ds, suite["Multi-faceted"], method
            )
            assert -1.0 <= scores.pearson <= 1.0
            assert estimates

    def test_difficulty_accuracy_unknown_method(self, suite_and_ds):
        ds, suite = suite_and_ds
        with pytest.raises(ValueError):
            accuracy.difficulty_accuracy(ds, suite["Multi-faceted"], "Psychic")

    def test_rare_item_rmse_counts_only_rare(self, suite_and_ds):
        ds, suite = suite_and_ds
        _, estimates = accuracy.difficulty_accuracy(ds, suite["Multi-faceted"], "Empirical")
        rmse, count = accuracy.rare_item_rmse(ds, estimates, max_occurrences=2)
        counts = ds.log.item_counts()
        expected = sum(1 for c in counts.values() if c <= 2)
        assert count == expected
        assert np.isfinite(rmse)

    def test_rare_item_rmse_no_rare_items(self, suite_and_ds):
        ds, suite = suite_and_ds
        _, estimates = accuracy.difficulty_accuracy(ds, suite["Multi-faceted"], "Empirical")
        rmse, count = accuracy.rare_item_rmse(ds, estimates, max_occurrences=0)
        assert count == 0
        assert np.isnan(rmse)


class TestPredictionHelpers:
    def test_results_cached_and_complete(self):
        from repro.experiments import prediction

        first = prediction.item_prediction_results("cooking", "small", "last")
        second = prediction.item_prediction_results("cooking", "small", "last")
        assert first is second
        assert set(first) == set(prediction.MODELS)

    def test_invalid_domain_and_holdout(self):
        from repro.experiments import prediction

        with pytest.raises(ConfigurationError):
            prediction.item_prediction_results("chess", "small", "last")
        with pytest.raises(ConfigurationError):
            prediction.item_prediction_results("cooking", "small", "middle")
