"""Tests for repro.data.io (JSONL round-trips)."""

import pytest

from repro.data.actions import Action, ActionLog
from repro.data.io import load_catalog, load_log, save_catalog, save_log
from repro.data.items import Item, ItemCatalog
from repro.exceptions import DataError


class TestLogRoundTrip:
    def test_round_trip(self, tmp_path):
        actions = [
            Action(time=0.0, user="a", item="x", rating=3.5),
            Action(time=1.0, user="a", item="y"),
            Action(time=0.0, user="b", item="x"),
        ]
        log = ActionLog.from_actions(actions)
        path = tmp_path / "log.jsonl"
        save_log(log, path)
        loaded = load_log(path)
        assert loaded.num_users == 2
        assert loaded.sequence("a").items == ("x", "y")
        assert loaded.sequence("a")[0].rating == 3.5
        assert loaded.sequence("a")[1].rating is None

    def test_integer_ids_survive(self, tmp_path):
        log = ActionLog.from_actions([Action(time=0.0, user=7, item=9)])
        path = tmp_path / "log.jsonl"
        save_log(log, path)
        assert load_log(path).sequence(7).items == (9,)

    def test_non_json_id_rejected(self, tmp_path):
        log = ActionLog.from_actions([Action(time=0.0, user=("tu", "ple"), item="x")])
        with pytest.raises(DataError):
            save_log(log, tmp_path / "log.jsonl")

    def test_malformed_line_reports_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"time": 0, "user": "a", "item": "x"}\nnot-json\n')
        with pytest.raises(DataError, match="bad.jsonl:2"):
            load_log(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('{"time": 0, "user": "a", "item": "x"}\n\n')
        assert load_log(path).num_actions == 1


class TestCatalogRoundTrip:
    def test_round_trip(self, tmp_path):
        catalog = ItemCatalog(
            [
                Item(id="a", features={"k": 1, "s": "x"}, metadata={"year": 1990}),
                Item(id="b", features={"k": 2, "s": "y"}),
            ]
        )
        path = tmp_path / "catalog.jsonl"
        save_catalog(catalog, path)
        loaded = load_catalog(path)
        assert len(loaded) == 2
        assert loaded["a"].features == {"k": 1, "s": "x"}
        assert loaded["a"].metadata == {"year": 1990}
        assert loaded["b"].metadata == {}

    def test_missing_id_field(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"features": {}}\n')
        with pytest.raises(DataError):
            load_catalog(path)

    def test_non_json_feature_rejected(self, tmp_path):
        catalog = ItemCatalog([Item(id="a", features={"k": {1, 2}})])
        with pytest.raises(DataError):
            save_catalog(catalog, tmp_path / "c.jsonl")

    def test_simulated_dataset_round_trip(self, tmp_path):
        """End-to-end: a generated dataset survives save/load."""
        from repro.synth import CookingConfig, generate_cooking

        ds = generate_cooking(CookingConfig(num_users=10, num_items=40))
        save_log(ds.log, tmp_path / "log.jsonl")
        save_catalog(ds.catalog, tmp_path / "catalog.jsonl")
        log = load_log(tmp_path / "log.jsonl")
        catalog = load_catalog(tmp_path / "catalog.jsonl")
        assert log.num_actions == ds.log.num_actions
        assert len(catalog) == len(ds.catalog)
        # The reloaded catalog still encodes under the domain schema.
        ds.feature_set.encode(catalog)
