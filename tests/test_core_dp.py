"""Tests for repro.core.dp: the monotone-path dynamic program.

The crown jewel here is the property test comparing the DP against brute
force over every valid monotone path.
"""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dp import best_monotone_path, path_log_likelihood
from repro.exceptions import ConfigurationError


def brute_force_best(scores: np.ndarray) -> float:
    """Max total score over all valid paths, by exhaustive enumeration."""
    n, S = scores.shape
    best = -np.inf
    for start in range(S):
        # enumerate all 2^(n-1) stay/up decision vectors
        for steps in itertools.product((0, 1), repeat=n - 1):
            levels = np.cumsum((start,) + steps)
            if levels[-1] >= S:
                continue
            total = scores[np.arange(n), levels].sum()
            best = max(best, total)
    return best


class TestBestMonotonePath:
    def test_single_action_picks_argmax(self):
        scores = np.array([[1.0, 3.0, 2.0]])
        result = best_monotone_path(scores)
        assert result.levels.tolist() == [1]
        assert result.log_likelihood == 3.0

    def test_empty_sequence(self):
        result = best_monotone_path(np.empty((0, 3)))
        assert len(result.levels) == 0
        assert result.log_likelihood == 0.0

    def test_single_level(self):
        scores = np.array([[1.0], [2.0], [3.0]])
        result = best_monotone_path(scores)
        assert result.levels.tolist() == [0, 0, 0]
        assert result.log_likelihood == 6.0

    def test_monotone_and_step_constraint(self):
        rng = np.random.default_rng(0)
        scores = rng.normal(size=(30, 4))
        levels = best_monotone_path(scores).levels
        steps = np.diff(levels)
        assert np.all((steps == 0) | (steps == 1))

    def test_forced_progression(self):
        # Each action strongly prefers the next level up.
        scores = np.full((3, 3), -10.0)
        for n in range(3):
            scores[n, n] = 0.0
        result = best_monotone_path(scores)
        assert result.levels.tolist() == [0, 1, 2]

    def test_can_start_above_bottom(self):
        scores = np.array([[-10.0, 0.0], [-10.0, 0.0]])
        result = best_monotone_path(scores)
        assert result.levels.tolist() == [1, 1]

    def test_need_not_reach_top(self):
        scores = np.array([[0.0, -10.0], [0.0, -10.0]])
        result = best_monotone_path(scores)
        assert result.levels.tolist() == [0, 0]

    def test_cannot_skip_levels(self):
        # Level 2 is great at action 1, but reaching it from level 0 in one
        # step is illegal; the best legal path must sacrifice something.
        scores = np.array([[0.0, -5.0, -5.0], [-5.0, -5.0, 100.0]])
        result = best_monotone_path(scores)
        # from level 0 we can only reach level 1; from level 1 (start) we
        # can reach 2: path [1, 2] scores -5 + 100 = 95.
        assert result.levels.tolist() == [1, 2]
        assert result.log_likelihood == pytest.approx(95.0)

    def test_ties_break_to_lower_level(self):
        scores = np.zeros((4, 3))
        result = best_monotone_path(scores)
        assert result.levels.tolist() == [0, 0, 0, 0]

    def test_reported_ll_matches_path(self):
        rng = np.random.default_rng(7)
        scores = rng.normal(size=(20, 5))
        result = best_monotone_path(scores)
        assert result.log_likelihood == pytest.approx(
            path_log_likelihood(scores, result.levels)
        )

    def test_bad_shapes(self):
        with pytest.raises(ConfigurationError):
            best_monotone_path(np.zeros(3))
        with pytest.raises(ConfigurationError):
            best_monotone_path(np.empty((2, 0)))


class TestPathLogLikelihood:
    def test_validates_monotonicity(self):
        scores = np.zeros((3, 3))
        with pytest.raises(ConfigurationError):
            path_log_likelihood(scores, np.array([2, 1, 0]))  # decreasing
        with pytest.raises(ConfigurationError):
            path_log_likelihood(scores, np.array([0, 2, 2]))  # skips a level

    def test_validates_range(self):
        scores = np.zeros((2, 2))
        with pytest.raises(ConfigurationError):
            path_log_likelihood(scores, np.array([0, 5]))

    def test_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            path_log_likelihood(np.zeros((2, 2)), np.array([0]))

    def test_empty(self):
        assert path_log_likelihood(np.empty((0, 2)), np.empty(0, dtype=int)) == 0.0


@settings(max_examples=200, deadline=None)
@given(
    n=st.integers(1, 7),
    s=st.integers(1, 4),
    data=st.data(),
)
def test_dp_matches_brute_force(n, s, data):
    """Property: the DP finds the globally optimal monotone path."""
    flat = data.draw(
        st.lists(
            st.floats(min_value=-100, max_value=100, allow_nan=False),
            min_size=n * s,
            max_size=n * s,
        )
    )
    scores = np.asarray(flat).reshape(n, s)
    result = best_monotone_path(scores)
    assert result.log_likelihood == pytest.approx(brute_force_best(scores))
    # and the reported path actually achieves the reported value
    assert path_log_likelihood(scores, result.levels) == pytest.approx(
        result.log_likelihood
    )
