"""Chaos suite for the streaming ingest → fold-in → hot-swap loop.

The load-bearing claim (the crash-safety contract of
:mod:`repro.serve.ingest` + :mod:`repro.serve.foldin`): kill the process
at *any* injected fault point — a torn WAL append, a crash between the
artifact publish and the watermark side-file, a worker death mid-fold —
restart, and the replayed fold-in converges to a model **bit-identical**
to an uninterrupted run, with zero lost and zero double-applied events.

"Restart" here is literal object death: every scenario builds a fresh
:class:`WriteAheadLog` (re-running recovery against whatever bytes the
crash left) and a fresh :class:`FoldinWorker` (re-bootstrapping from the
artifact's embedded watermark), sharing no in-memory state with the
crashed generation.

Model identity is asserted over the *loaded* arrays — parameters,
assignments, assignment times, encoded columns, training trace — not the
raw ``.npz`` bytes, which embed zip timestamps.
"""

import json
import os
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.serialize import artifact_metadata, load_model, save_model
from repro.core.serialize import _cell_payload
from repro.exceptions import DataError
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.serve import (
    FoldinConfig,
    FoldinWorker,
    ModelState,
    ServeConfig,
    ServerThread,
    SkillServer,
    WalConfig,
    WriteAheadLog,
    inspect_wal,
)
from repro.serve.foldin import SNAPSHOT_FILENAME, WATERMARK_FILENAME, read_watermark
from repro.testing.faults import (
    SimulatedCrash,
    crash_after_publish,
    crash_before_snapshot,
    failing_foldin_extend,
    failing_reload,
    failing_wal_truncate,
    torn_wal_append,
)

from tests.test_serve_e2e import _request


@pytest.fixture(autouse=True)
def registry():
    with use_registry(MetricsRegistry()) as reg:
        yield reg


class FakeClock:
    """A manually advanced monotonic clock for backoff tests."""

    def __init__(self) -> None:
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _events(count, *, start_time=100.0, users=("u0", "u1", "n0", "u2", "n1")):
    """A deterministic event stream over trained and brand-new users."""
    items = [f"i{index % 12}" for index in range(count)]
    return [
        {
            "user": users[index % len(users)],
            "item": items[index],
            "time": start_time + float(index),
        }
        for index in range(count)
    ]


def _assert_models_identical(left, right):
    """Bit-identical over every array a loaded model is made of."""
    assert left.parameters.num_levels == right.parameters.num_levels
    for level_left, level_right in zip(left.parameters.cells, right.parameters.cells):
        for cell_left, cell_right in zip(level_left, level_right):
            tag_left, params_left = _cell_payload(cell_left)
            tag_right, params_right = _cell_payload(cell_right)
            assert tag_left == tag_right
            assert np.array_equal(params_left, params_right)
    assert list(left.encoded.item_ids) == list(right.encoded.item_ids)
    assert list(left.assignments) == list(right.assignments)  # user order too
    for user in left.assignments:
        assert np.array_equal(left.assignments[user], right.assignments[user])
        assert np.array_equal(
            left._assignment_times[user], right._assignment_times[user]
        )
    assert left.trace.log_likelihoods == right.trace.log_likelihoods


def _fresh_site(model, tmp_path, name):
    """An isolated (artifact prefix, WAL directory) pair for one scenario."""
    site = tmp_path / name
    site.mkdir()
    prefix = site / "model"
    save_model(model, prefix)
    return prefix, site / "wal"


def _drain_fully(worker):
    worker.bootstrap()
    while worker.pending() > 0:
        worker.run_once()
    return worker


# ---------------------------------------------------------------- WAL unit


class TestWalBasics:
    def test_append_read_roundtrip(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        events = _events(6)
        first, last = wal.append(events[:4])
        assert (first, last) == (1, 4)
        assert wal.append(events[4:]) == (5, 6)
        assert wal.last_seq == 6
        assert wal.durable_seq == 6
        replayed = list(wal.read())
        assert [record.seq for record in replayed] == [1, 2, 3, 4, 5, 6]
        assert [record.event for record in replayed] == events

    def test_empty_batch_rejected(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        with pytest.raises(DataError, match="empty"):
            wal.append([])

    def test_ranged_read(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        wal.append(_events(9))
        assert [r.seq for r in wal.read(after_seq=3, upto_seq=7)] == [4, 5, 6, 7]

    def test_rotation_and_reopen_resume_sequence(self, tmp_path):
        config = WalConfig(segment_bytes=200)
        wal = WriteAheadLog(tmp_path / "wal", config)
        for batch in range(4):
            wal.append(_events(2, start_time=10.0 * batch))
        assert wal.segment_count > 1
        wal.close()
        reopened = WriteAheadLog(tmp_path / "wal", config)
        assert reopened.last_seq == 8
        assert reopened.append(_events(1)) == (9, 9)
        assert [r.seq for r in reopened.read()] == list(range(1, 10))

    def test_prune_keeps_active_segment(self, tmp_path):
        config = WalConfig(segment_bytes=200)
        wal = WriteAheadLog(tmp_path / "wal", config)
        for batch in range(4):
            wal.append(_events(2, start_time=10.0 * batch))
        segments = wal.segment_count
        removed = wal.prune(upto_seq=wal.last_seq)
        assert removed == segments - 1
        assert wal.segment_count == 1
        # The surviving (active) segment still accepts appends.
        assert wal.append(_events(1))[0] == 9

    def test_corrupt_middle_segment_raises_on_open(self, tmp_path):
        config = WalConfig(segment_bytes=200)
        wal = WriteAheadLog(tmp_path / "wal", config)
        for batch in range(4):
            wal.append(_events(2, start_time=10.0 * batch))
        wal.close()
        victim = sorted((tmp_path / "wal").glob("wal-*.seg"))[0]
        data = bytearray(victim.read_bytes())
        data[len(data) // 2] ^= 0xFF
        victim.write_bytes(bytes(data))
        with pytest.raises(DataError, match="corrupt"):
            WriteAheadLog(tmp_path / "wal", config)

    def test_missing_middle_segment_is_a_discontinuity(self, tmp_path):
        config = WalConfig(segment_bytes=200)
        wal = WriteAheadLog(tmp_path / "wal", config)
        for batch in range(4):
            wal.append(_events(2, start_time=10.0 * batch))
        wal.close()
        sorted((tmp_path / "wal").glob("wal-*.seg"))[1].unlink()
        with pytest.raises(DataError, match="discontinuity"):
            WriteAheadLog(tmp_path / "wal", config)

    def test_inspect_reports_ok_segments(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal", WalConfig(segment_bytes=200))
        for batch in range(3):
            wal.append(_events(2, start_time=10.0 * batch))
        report = inspect_wal(tmp_path / "wal")
        assert report["last_seq"] == 6
        assert report["total_records"] == 6
        assert all(s["status"] in ("ok", "empty") for s in report["segments"])


class TestTornTail:
    def test_torn_append_rolls_back_the_live_segment(self, tmp_path, registry):
        """A failed append must not leave garbage in front of later appends:
        the same live WAL object keeps journaling, and everything acked
        after the failure stays readable (no restart required)."""
        wal = WriteAheadLog(tmp_path / "wal")
        wal.append(_events(3))
        with torn_wal_append(keep_bytes=10) as state:
            with pytest.raises(SimulatedCrash):
                wal.append(_events(2, start_time=50.0))
        assert state["torn"] and state["dropped_bytes"] > 0
        assert registry.counter("ingest.append_rollbacks").value == 1
        assert wal.last_seq == 3  # nothing of the torn batch was acked
        # The un-acked batch can be blindly retried on the SAME object,
        # and later batches land behind it — all of them readable.
        assert wal.append(_events(2, start_time=50.0)) == (4, 5)
        assert wal.append(_events(3, start_time=60.0)) == (6, 8)
        assert [r.seq for r in wal.read()] == list(range(1, 9))
        # Restart sees the identical committed history.
        wal.close()
        reopened = WriteAheadLog(tmp_path / "wal")
        assert reopened.last_seq == 8
        assert [r.seq for r in reopened.read()] == list(range(1, 9))

    def test_torn_append_is_truncated_on_reopen(self, tmp_path, registry):
        """Process-death flavour: the rollback never runs (the disk cannot
        even truncate), the torn bytes stay on disk, and recovery at the
        next open truncates them — the original crash contract."""
        wal = WriteAheadLog(tmp_path / "wal")
        wal.append(_events(3))
        with failing_wal_truncate():
            with torn_wal_append(keep_bytes=10) as state:
                with pytest.raises(SimulatedCrash):
                    wal.append(_events(2, start_time=50.0))
        assert state["torn"] and state["dropped_bytes"] > 0
        reopened = WriteAheadLog(tmp_path / "wal")
        assert reopened.last_seq == 3  # nothing of the torn batch survives
        assert registry.counter("ingest.torn_tail_truncations").value == 1
        # The un-acked batch can be blindly retried: exactly-once.
        assert reopened.append(_events(2, start_time=50.0)) == (4, 5)
        assert [r.seq for r in reopened.read()] == [1, 2, 3, 4, 5]

    def test_unremovable_garbage_blocks_appends_until_truncate_succeeds(
        self, tmp_path, registry
    ):
        """While the failed-append garbage cannot be truncated away, the
        WAL must refuse to journal — an append behind garbage would be
        acked yet invisible to readers."""
        wal = WriteAheadLog(tmp_path / "wal")
        wal.append(_events(3))
        with failing_wal_truncate():
            with torn_wal_append(keep_bytes=10):
                with pytest.raises(SimulatedCrash):
                    wal.append(_events(2, start_time=50.0))
            with pytest.raises(DataError, match="garbage"):
                wal.append(_events(2, start_time=50.0))
        # Disk back: the pre-append rollback retry clears the tail and the
        # same object resumes journaling with no loss and no duplicates.
        assert wal.append(_events(2, start_time=50.0)) == (4, 5)
        assert registry.counter("ingest.append_rollbacks").value == 1
        assert [r.seq for r in wal.read()] == [1, 2, 3, 4, 5]

    def test_mid_batch_tear_discards_the_whole_batch(self, tmp_path):
        """A tear can leave complete, checksum-valid records of the un-acked
        batch on disk; the missing commit record must void them all, or a
        client retry would double-apply the survivors."""
        wal = WriteAheadLog(tmp_path / "wal")
        wal.append(_events(3))
        batch = _events(4, start_time=50.0)
        # Keep enough bytes that at least one full record of the batch
        # lands; the dead disk keeps the rollback from cleaning it up.
        with failing_wal_truncate():
            with torn_wal_append(keep_bytes=120):
                with pytest.raises(SimulatedCrash):
                    wal.append(batch)
        report = inspect_wal(tmp_path / "wal")
        assert report["segments"][-1]["status"] == "torn-tail"
        reopened = WriteAheadLog(tmp_path / "wal")
        assert reopened.last_seq == 3
        reopened.append(batch)
        replayed = [r.event for r in reopened.read()]
        assert replayed == _events(3) + batch  # no loss, no duplicates

    def test_inspect_is_read_only(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        wal.append(_events(2))
        with failing_wal_truncate():
            with torn_wal_append(keep_bytes=9):
                with pytest.raises(SimulatedCrash):
                    wal.append(_events(1, start_time=50.0))
        segment = sorted((tmp_path / "wal").glob("wal-*.seg"))[-1]
        size_before = segment.stat().st_size
        report = inspect_wal(tmp_path / "wal")
        assert report["segments"][-1]["status"] == "torn-tail"
        assert segment.stat().st_size == size_before


# ------------------------------------------------------------- fold-in unit


class TestFoldinWorker:
    def test_fold_publishes_and_modelstate_hot_swaps(
        self, fitted_tiny_model, tiny_log, tmp_path
    ):
        prefix, wal_dir = _fresh_site(fitted_tiny_model, tmp_path, "site")
        state = ModelState(prefix, poll_seconds=0.01)
        state.load()
        wal = WriteAheadLog(wal_dir)
        wal.append(_events(8))
        worker = FoldinWorker(wal, prefix, tiny_log)
        worker.bootstrap()
        assert worker.run_once() == 8
        assert worker.watermark == 8
        # The watermark rode inside the artifact commit.
        extra = artifact_metadata(prefix)["extra"]
        assert extra["foldin"]["watermark_seq"] == 8
        assert read_watermark(prefix, wal_dir) == 8
        # The serving layer sees it as an ordinary hot reload.
        stat = os.stat(prefix.with_suffix(".json"))
        os.utime(
            prefix.with_suffix(".json"),
            ns=(stat.st_atime_ns, stat.st_mtime_ns + 1_000_000),
        )
        assert state.maybe_reload() is True
        assert state.current.version == 2
        folded = state.current.model
        assert "n0" in folded.assignments and "n1" in folded.assignments

    def test_no_pending_events_is_a_noop(self, fitted_tiny_model, tiny_log, tmp_path):
        prefix, wal_dir = _fresh_site(fitted_tiny_model, tmp_path, "site")
        worker = FoldinWorker(WriteAheadLog(wal_dir), prefix, tiny_log)
        worker.bootstrap()
        before = os.stat(prefix.with_suffix(".json")).st_mtime_ns
        assert worker.run_once() == 0
        assert os.stat(prefix.with_suffix(".json")).st_mtime_ns == before

    def test_new_user_folds_across_two_cycles(
        self, fitted_tiny_model, tiny_log, tmp_path
    ):
        prefix, wal_dir = _fresh_site(fitted_tiny_model, tmp_path, "site")
        wal = WriteAheadLog(wal_dir)
        worker = FoldinWorker(wal, prefix, tiny_log)
        worker.bootstrap()
        wal.append([{"user": "fresh", "item": "i1", "time": 100.0}])
        worker.run_once()
        first = load_model(prefix).assignments["fresh"]
        assert len(first) == 1
        wal.append([{"user": "fresh", "item": "i2", "time": 101.0}])
        worker.run_once()
        second = load_model(prefix).assignments["fresh"]
        assert len(second) == 2  # the second fold saw the merged history

    def test_poison_event_is_dropped_not_wedged(
        self, fitted_tiny_model, tiny_log, tmp_path, registry
    ):
        prefix, wal_dir = _fresh_site(fitted_tiny_model, tmp_path, "site")
        wal = WriteAheadLog(wal_dir)
        # Bypasses /ingest validation — e.g. the catalog shrank between
        # journaling and folding.
        wal.append(
            [
                {"user": "u0", "item": "i1", "time": 100.0},
                {"user": "u0", "item": "not-in-catalog", "time": 101.0},
                {"user": "u1", "item": "i2", "time": 102.0},
            ]
        )
        worker = FoldinWorker(wal, prefix, tiny_log)
        worker.bootstrap()
        assert worker.run_once() == 2
        assert worker.watermark == 3  # the poison seq is consumed, not retried
        assert worker.health()["events_dropped"] == 1
        assert registry.counter("foldin.events_dropped").value == 1

    def test_transient_failure_retries_after_backoff(
        self, fitted_tiny_model, tiny_log, tmp_path, registry
    ):
        prefix, wal_dir = _fresh_site(fitted_tiny_model, tmp_path, "site")
        wal = WriteAheadLog(wal_dir)
        wal.append(_events(4))
        clock = FakeClock()
        worker = FoldinWorker(wal, prefix, tiny_log, clock=clock)
        worker.bootstrap()
        with failing_foldin_extend(calls=1, repeat=False):
            assert worker.attempt() is None
        assert worker.health()["consecutive_failures"] == 1
        assert registry.counter("foldin.retries").value == 1
        assert worker.attempt() is None  # still inside the backoff window
        clock.advance(1.0)  # past retry_base_seconds=0.5
        assert worker.attempt() == 4
        assert worker.health()["consecutive_failures"] == 0
        assert registry.info("foldin.status").value == "ok"

    def test_degraded_mode_serves_stale_keeps_journaling_then_recovers(
        self, fitted_tiny_model, tiny_log, tmp_path, registry
    ):
        prefix, wal_dir = _fresh_site(fitted_tiny_model, tmp_path, "site")
        wal = WriteAheadLog(wal_dir)
        wal.append(_events(4))
        clock = FakeClock()
        config = FoldinConfig(max_retries=3, retry_base_seconds=0.5, retry_cap_seconds=4.0)
        worker = FoldinWorker(wal, prefix, tiny_log, config=config, clock=clock)
        worker.bootstrap()
        version_before = os.stat(prefix.with_suffix(".json")).st_mtime_ns
        with failing_foldin_extend(calls=1, repeat=True):
            for _ in range(3):
                assert worker.attempt() is None
                clock.advance(10.0)
            assert worker.health()["status"] == "degraded"
            assert registry.gauge("foldin.degraded").value == 1
            assert registry.info("foldin.status").value == "degraded"
            assert registry.info("foldin.last_error").value.startswith("SimulatedCrash")
            # Serve-stale, keep-journaling: the artifact is untouched and the
            # WAL still accepts durable appends while degraded.
            assert os.stat(prefix.with_suffix(".json")).st_mtime_ns == version_before
            assert wal.append(_events(2, start_time=500.0)) == (5, 6)
        clock.advance(10.0)  # fault gone: next attempt recovers automatically
        assert worker.attempt() == 6
        assert worker.health()["status"] == "ok"
        assert registry.gauge("foldin.degraded").value == 0

    def test_drift_gauges_published(self, fitted_tiny_model, tiny_log, tmp_path, registry):
        prefix, wal_dir = _fresh_site(fitted_tiny_model, tmp_path, "site")
        wal = WriteAheadLog(wal_dir)
        wal.append(_events(6))
        worker = FoldinWorker(wal, prefix, tiny_log)
        _drain_fully(worker)
        training = registry.gauge("foldin.ll_per_action_training").value
        recent = registry.gauge("foldin.ll_per_action_recent").value
        assert training < 0 and recent < 0  # log-likelihoods per action
        assert registry.gauge("foldin.ll_drift").value == pytest.approx(
            recent - training
        )

    def test_decay_reassigns_stale_users(
        self, fitted_tiny_model, tiny_log, tmp_path, registry
    ):
        prefix, wal_dir = _fresh_site(fitted_tiny_model, tmp_path, "site")
        wal = WriteAheadLog(wal_dir)
        # Only u0 stays active, far in the future: u1/u2 go stale.
        wal.append([{"user": "u0", "item": "i1", "time": 1000.0}])
        config = FoldinConfig(decay_half_life=5.0, decay_stale_after=100.0)
        worker = FoldinWorker(wal, prefix, tiny_log, config=config)
        _drain_fully(worker)
        assert registry.gauge("foldin.decay_users").value == 2
        model = load_model(prefix)
        # Decay re-solves stale users over the forgetting lattice; their
        # trajectories stay valid 1-based levels of unchanged length.
        for user in ("u1", "u2"):
            levels = model.assignments[user]
            assert len(levels) == len(fitted_tiny_model.assignments[user])
            assert levels.min() >= 1 and levels.max() <= model.num_levels


# ----------------------------------------------------------- chaos parity


class TestChaosParity:
    """Kill-and-restart at every injected fault point replays to a model
    bit-identical to an uninterrupted run — zero lost, zero double-applied.
    """

    BATCHES = (_events(5), _events(7, start_time=200.0), _events(4, start_time=300.0))
    TOTAL = 16

    def _baseline(self, model, log, tmp_path):
        prefix, wal_dir = _fresh_site(model, tmp_path, "baseline")
        wal = WriteAheadLog(wal_dir)
        for batch in self.BATCHES:
            wal.append(batch)
        worker = FoldinWorker(wal, prefix, log)
        _drain_fully(worker)
        assert worker.watermark == self.TOTAL
        return load_model(prefix)

    def _verify(self, prefix, wal_dir, log, baseline):
        """Restart from disk state, drain, and demand bit-identity."""
        wal = WriteAheadLog(wal_dir)  # fresh recovery pass
        worker = FoldinWorker(wal, prefix, log)  # fresh bootstrap
        _drain_fully(worker)
        assert worker.watermark == self.TOTAL
        assert list(wal.read(after_seq=0))[-1].seq == self.TOTAL
        final = load_model(prefix)
        _assert_models_identical(final, baseline)
        # Zero lost / zero doubled, asserted structurally: every trained
        # user plus both new users carries training + folded action counts.
        per_user: dict = {}
        for event in (e for batch in self.BATCHES for e in batch):
            per_user[event["user"]] = per_user.get(event["user"], 0) + 1
        for user, folded_count in per_user.items():
            trained = len(baseline.assignments.get(user, ())) - folded_count
            assert len(final.assignments[user]) == max(0, trained) + folded_count

    def test_uninterrupted_run_is_batch_partition_independent(
        self, fitted_tiny_model, tiny_log, tmp_path
    ):
        baseline = self._baseline(fitted_tiny_model, tiny_log, tmp_path)
        # Same 16 events, different batch cuts and fold granularity.
        prefix, wal_dir = _fresh_site(fitted_tiny_model, tmp_path, "repartitioned")
        wal = WriteAheadLog(wal_dir)
        flat = [event for batch in self.BATCHES for event in batch]
        for start in range(0, self.TOTAL, 3):
            wal.append(flat[start : start + 3])
        worker = FoldinWorker(
            wal, prefix, tiny_log, config=FoldinConfig(max_events_per_fold=5)
        )
        _drain_fully(worker)
        _assert_models_identical(load_model(prefix), baseline)

    def test_restart_after_torn_ingest_append(
        self, fitted_tiny_model, tiny_log, tmp_path
    ):
        baseline = self._baseline(fitted_tiny_model, tiny_log, tmp_path)
        prefix, wal_dir = _fresh_site(fitted_tiny_model, tmp_path, "torn")
        wal = WriteAheadLog(wal_dir)
        wal.append(self.BATCHES[0])
        with failing_wal_truncate():  # process death: no rollback runs
            with torn_wal_append(keep_bytes=150):  # dies mid-write of batch 2
                with pytest.raises(SimulatedCrash):
                    wal.append(self.BATCHES[1])
        # Restart: recovery voids the un-acked batch; the client retries it.
        wal = WriteAheadLog(wal_dir)
        wal.append(self.BATCHES[1])
        wal.append(self.BATCHES[2])
        self._verify(prefix, wal_dir, tiny_log, baseline)

    def test_foldin_sees_batches_acked_after_a_torn_append_without_restart(
        self, fitted_tiny_model, tiny_log, tmp_path
    ):
        """The live-process flavour of the torn append: the SAME WAL object
        keeps journaling after a failed append, and the fold-in worker must
        see every later acked batch (a rollback-less WAL would hide them
        behind the garbage while the watermark advanced past them)."""
        baseline = self._baseline(fitted_tiny_model, tiny_log, tmp_path)
        prefix, wal_dir = _fresh_site(fitted_tiny_model, tmp_path, "torn-live")
        wal = WriteAheadLog(wal_dir)
        wal.append(self.BATCHES[0])
        with torn_wal_append(keep_bytes=150):
            with pytest.raises(SimulatedCrash):
                wal.append(self.BATCHES[1])
        # No restart: the client retries on the same live WAL, then keeps
        # sending, and fold-in drains everything.
        wal.append(self.BATCHES[1])
        wal.append(self.BATCHES[2])
        worker = FoldinWorker(wal, prefix, tiny_log)
        _drain_fully(worker)
        assert worker.watermark == self.TOTAL
        assert worker.health()["events_dropped"] == 0
        _assert_models_identical(load_model(prefix), baseline)

    def test_restart_after_prune_replays_from_snapshot(
        self, fitted_tiny_model, tiny_log, tmp_path
    ):
        """Pruned segments are gone from the WAL; the applied-events
        snapshot must carry their events or a restarted worker rebuilds an
        incomplete merged log (the documented pure-function-of-the-log
        guarantee would silently break under the default config)."""
        baseline = self._baseline(fitted_tiny_model, tiny_log, tmp_path)
        prefix, wal_dir = _fresh_site(fitted_tiny_model, tmp_path, "pruned")
        wal = WriteAheadLog(wal_dir, WalConfig(segment_bytes=200))
        wal.append(self.BATCHES[0])
        wal.append(self.BATCHES[1])
        worker = FoldinWorker(wal, prefix, tiny_log)  # prune on by default
        worker.bootstrap()
        while worker.pending() > 0:
            worker.run_once()
        # Rotation + pruning really dropped folded history from the WAL.
        assert (wal_dir / SNAPSHOT_FILENAME).exists()
        remaining = [r.seq for r in wal.read(after_seq=0)]
        assert remaining[0] > 1, "test needs pruning to have removed segments"
        wal.close()
        # Restart: fresh WAL + worker; the tail batch arrives after reboot.
        wal = WriteAheadLog(wal_dir, WalConfig(segment_bytes=200))
        wal.append(self.BATCHES[2])
        worker = FoldinWorker(wal, prefix, tiny_log)
        _drain_fully(worker)
        assert worker.watermark == self.TOTAL
        _assert_models_identical(load_model(prefix), baseline)

    def test_restart_after_crash_between_publish_and_snapshot(
        self, fitted_tiny_model, tiny_log, tmp_path
    ):
        """Crash in the publish → snapshot gap: the artifact watermark is
        ahead of the snapshot, and the WAL (whose pruning never outruns
        the snapshot) must still cover the difference."""
        baseline = self._baseline(fitted_tiny_model, tiny_log, tmp_path)
        prefix, wal_dir = _fresh_site(fitted_tiny_model, tmp_path, "snapshot-gap")
        wal = WriteAheadLog(wal_dir, WalConfig(segment_bytes=200))
        wal.append(self.BATCHES[0])
        worker = FoldinWorker(wal, prefix, tiny_log)
        worker.bootstrap()
        worker.run_once()  # fold 1 publishes artifact + snapshot, prunes
        wal.append(self.BATCHES[1])
        with crash_before_snapshot():
            with pytest.raises(SimulatedCrash):
                worker.run_once()  # artifact committed; snapshot write dies
        embedded = artifact_metadata(prefix)["extra"]["foldin"]["watermark_seq"]
        assert embedded == 12
        snapshot = json.loads((wal_dir / SNAPSHOT_FILENAME).read_text())
        assert snapshot["watermark_seq"] == 5  # still the previous fold's
        wal.close()
        wal = WriteAheadLog(wal_dir, WalConfig(segment_bytes=200))
        wal.append(self.BATCHES[2])
        worker = FoldinWorker(wal, prefix, tiny_log)
        _drain_fully(worker)
        assert worker.watermark == self.TOTAL
        _assert_models_identical(load_model(prefix), baseline)

    def test_restart_after_crash_between_publish_and_watermark(
        self, fitted_tiny_model, tiny_log, tmp_path
    ):
        baseline = self._baseline(fitted_tiny_model, tiny_log, tmp_path)
        prefix, wal_dir = _fresh_site(fitted_tiny_model, tmp_path, "publish-gap")
        wal = WriteAheadLog(wal_dir)
        wal.append(self.BATCHES[0])
        wal.append(self.BATCHES[1])
        worker = FoldinWorker(wal, prefix, tiny_log)
        worker.bootstrap()
        with crash_after_publish():
            with pytest.raises(SimulatedCrash):
                worker.run_once()
        # The artifact (with its embedded watermark) committed; only the
        # advisory side file was lost.
        assert artifact_metadata(prefix)["extra"]["foldin"]["watermark_seq"] == 12
        assert not (wal_dir / WATERMARK_FILENAME).exists()
        wal.close()
        wal = WriteAheadLog(wal_dir)
        wal.append(self.BATCHES[2])
        self._verify(prefix, wal_dir, tiny_log, baseline)

    def test_restart_after_worker_death_mid_fold(
        self, fitted_tiny_model, tiny_log, tmp_path
    ):
        baseline = self._baseline(fitted_tiny_model, tiny_log, tmp_path)
        prefix, wal_dir = _fresh_site(fitted_tiny_model, tmp_path, "mid-fold")
        wal = WriteAheadLog(wal_dir)
        for batch in self.BATCHES:
            wal.append(batch)
        worker = FoldinWorker(
            wal, prefix, tiny_log, config=FoldinConfig(max_events_per_fold=6)
        )
        worker.bootstrap()
        worker.run_once()  # first fold publishes watermark 6
        with failing_foldin_extend(calls=1):
            with pytest.raises(SimulatedCrash):
                worker.run_once()  # dies before any publish
        assert artifact_metadata(prefix)["extra"]["foldin"]["watermark_seq"] == 6
        wal.close()
        self._verify(prefix, wal_dir, tiny_log, baseline)


# ------------------------------------------------------- reload backoff


class TestModelStateBackoff:
    def _bump(self, prefix):
        stat = os.stat(prefix.with_suffix(".json"))
        os.utime(
            prefix.with_suffix(".json"),
            ns=(stat.st_atime_ns, stat.st_mtime_ns + 1_000_000),
        )

    def test_backoff_suppresses_polls_and_recovers(
        self, fitted_tiny_model, tmp_path, registry
    ):
        prefix = tmp_path / "model"
        save_model(fitted_tiny_model, prefix)
        clock = FakeClock()
        state = ModelState(
            prefix,
            poll_seconds=0.01,
            retry_base_seconds=2.0,
            retry_cap_seconds=16.0,
            clock=clock,
        )
        state.load()
        with failing_reload(repeat=True):
            self._bump(prefix)
            assert state.maybe_reload() is False  # real attempt, fails
            assert state.reload_failures == 1
            # A flapping writer keeps changing the signature; polls inside
            # the backoff window are suppressed without touching disk.
            self._bump(prefix)
            assert state.maybe_reload() is False
            assert state.reload_failures == 1
            assert registry.counter("serve.reload_retry").value == 1
            clock.advance(3.0)  # past the 2s base backoff
            assert state.maybe_reload() is False  # second real attempt
            assert state.reload_failures == 2
            self._bump(prefix)
            clock.advance(3.0)  # inside the doubled (4s) window now
            assert state.maybe_reload() is False
            assert registry.counter("serve.reload_retry").value == 2
        clock.advance(60.0)
        self._bump(prefix)
        assert state.maybe_reload() is True  # fault gone: swap succeeds
        assert state.current.version == 2
        assert registry.counter("serve.reloads").value == 1

    def test_unexpected_exception_type_escapes(self, fitted_tiny_model, tmp_path):
        prefix = tmp_path / "model"
        save_model(fitted_tiny_model, prefix)
        state = ModelState(prefix, poll_seconds=0.01)
        state.load()
        self._bump(prefix)
        with failing_reload(repeat=False, exc=SimulatedCrash):
            with pytest.raises(SimulatedCrash):
                state.maybe_reload()


# ------------------------------------------------------------ /ingest e2e


@pytest.fixture
def served_with_ingest(fitted_tiny_model, tiny_log, tmp_path, registry):
    """A running server wired with a WAL and a (manually driven) fold-in
    worker — the full ingest → fold-in → hot-swap loop in one process."""
    prefix = tmp_path / "model"
    save_model(fitted_tiny_model, prefix)
    wal = WriteAheadLog(tmp_path / "wal")
    worker = FoldinWorker(
        wal, prefix, tiny_log, config=FoldinConfig(interval_seconds=60.0)
    )
    worker.bootstrap()
    server = SkillServer(
        ModelState(prefix, poll_seconds=0.02),
        ServeConfig(port=0, max_batch=8, max_wait_ms=2.0),
        wal=wal,
        foldin=worker,
    )
    thread = ServerThread(server)
    host, port = thread.start()
    try:
        yield host, port, prefix, wal, worker
    finally:
        thread.stop()
        worker.stop()
        wal.close()


class TestIngestEndpoint:
    def test_ingest_journals_durably(self, served_with_ingest):
        host, port, _, wal, _ = served_with_ingest
        status, raw = _request(
            host, port, "POST", "/ingest", {"events": _events(3)}
        )
        body = json.loads(raw)
        assert status == 200
        assert body["accepted"] == 3
        assert body["durable"] is True
        assert (body["first_seq"], body["last_seq"]) == (1, 3)
        assert wal.durable_seq == 3
        status, raw = _request(host, port, "GET", "/healthz")
        health = json.loads(raw)
        assert health["ingest"]["last_seq"] == 3
        assert health["foldin"]["pending_events"] == 3
        assert health["status"] == "ok"

    def test_ingest_validation(self, served_with_ingest):
        host, port, _, wal, _ = served_with_ingest
        status, raw = _request(host, port, "POST", "/ingest", {"events": []})
        assert status == 400
        status, raw = _request(
            host, port, "POST", "/ingest",
            {"events": [{"user": "u0", "time": 1.0}]},
        )
        assert status == 400 and b"item" in raw
        status, raw = _request(
            host, port, "POST", "/ingest",
            {"events": [{"user": "u0", "item": "nope", "time": 1.0}]},
        )
        assert status == 404 and b"retrain" in raw
        assert wal.last_seq == 0  # nothing invalid was journaled

    def test_ingest_unconfigured_is_503(self, fitted_tiny_model, tmp_path):
        prefix = tmp_path / "model"
        save_model(fitted_tiny_model, prefix)
        server = SkillServer(ModelState(prefix), ServeConfig(port=0))
        thread = ServerThread(server)
        host, port = thread.start()
        try:
            status, raw = _request(
                host, port, "POST", "/ingest", {"events": _events(1)}
            )
        finally:
            thread.stop()
        assert status == 503
        assert b"--ingest-wal" in raw

    def test_mid_traffic_foldin_swap_loses_no_requests(self, served_with_ingest):
        """The acceptance gate: a fold-in publish hot-swaps the model while
        /predict traffic is in flight, with zero failed requests."""
        host, port, prefix, _, worker = served_with_ingest
        failures, stop = [], threading.Event()

        def hammer():
            while not stop.is_set():
                status, raw = _request(
                    host, port, "POST", "/predict",
                    {"user": "u1", "time": 5.0, "k": 3},
                )
                if status != 200:
                    failures.append((status, raw))

        threads = [threading.Thread(target=hammer) for _ in range(3)]
        for thread in threads:
            thread.start()
        try:
            status, _ = _request(
                host, port, "POST", "/ingest", {"events": _events(6)}
            )
            assert status == 200
            worker.drain_now()  # fold + publish under live traffic
            # Defeat coarse mtime clocks so the watcher must notice.
            stat = os.stat(prefix.with_suffix(".json"))
            os.utime(
                prefix.with_suffix(".json"),
                ns=(stat.st_atime_ns, stat.st_mtime_ns + 1_000_000),
            )
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                _, raw = _request(host, port, "GET", "/healthz")
                if json.loads(raw)["model_version"] >= 2:
                    break
                time.sleep(0.02)
            else:
                pytest.fail("hot swap of the folded model never happened")
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        assert failures == []
        _, raw = _request(host, port, "GET", "/healthz")
        health = json.loads(raw)
        assert health["foldin"]["watermark_seq"] == 6
        assert health["foldin"]["pending_events"] == 0
