"""Multi-tenant serving: registry residency, routing, and parity.

The tenant registry's contract has three load-bearing pieces:

- *routing*: ``/t/<name>/...`` serves the named model, the unprefixed
  routes serve the default tenant, and the two are byte-identical when
  they name the same tenant;
- *residency*: LRU eviction under a byte budget never bricks a tenant —
  an evicted model reloads on its next request;
- *isolation*: one tenant's corrupt artifact (reload-failure backoff)
  or traffic burst (admission) never degrades a healthy tenant.
"""

from __future__ import annotations

import http.client
import json

import pytest

from repro.core.serialize import (
    attach_model_shm,
    model_resident_bytes,
    publish_model_shm,
    save_model,
)
from repro.core.training import fit_skill_model
from repro.exceptions import DataError
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.serve import (
    ModelState,
    ServeConfig,
    ServerThread,
    SkillServer,
    TenantRegistry,
    TenantSpec,
)


def _request(host, port, method, path, body=None):
    conn = http.client.HTTPConnection(host, port, timeout=30)
    try:
        payload = json.dumps(body).encode("utf-8") if body is not None else None
        headers = {"Content-Type": "application/json"} if payload else {}
        conn.request(method, path, payload, headers)
        response = conn.getresponse()
        return response.status, response.read(), dict(response.getheaders())
    finally:
        conn.close()


@pytest.fixture
def second_model(tiny_log, tiny_catalog, tiny_feature_set):
    """A model distinguishable from ``fitted_tiny_model`` (fewer levels)."""
    return fit_skill_model(
        tiny_log,
        tiny_catalog,
        tiny_feature_set.with_id_feature(),
        num_levels=2,
        init_min_actions=5,
        max_iterations=20,
    )


@pytest.fixture
def two_tenant_prefixes(fitted_tiny_model, second_model, tmp_path):
    alpha = tmp_path / "alpha"
    beta = tmp_path / "beta"
    save_model(fitted_tiny_model, alpha)
    save_model(second_model, beta)
    return alpha, beta


# ------------------------------------------------------------- shm parity


class TestModelShm:
    def test_round_trip_is_byte_identical(self, fitted_tiny_model, tmp_path):
        """A model re-saved from zero-copy shm views matches the original
        artifact byte for byte — the parity the prefork workers rely on."""
        segment, descriptor = publish_model_shm(fitted_tiny_model)
        try:
            attached, mapping = attach_model_shm(descriptor)
            save_model(fitted_tiny_model, tmp_path / "disk")
            save_model(attached, tmp_path / "shm")
            for suffix in (".json", ".npz"):
                assert (tmp_path / "disk").with_suffix(suffix).read_bytes() == (
                    tmp_path / "shm"
                ).with_suffix(suffix).read_bytes()
            del attached
            mapping.close()
        finally:
            segment.close()
            segment.unlink()

    def test_attach_refuses_wrong_checksum(self, fitted_tiny_model):
        segment, descriptor = publish_model_shm(fitted_tiny_model)
        try:
            with pytest.raises(DataError, match="checksum mismatch"):
                attach_model_shm({**descriptor, "sha256": "0" * 64})
        finally:
            segment.close()
            segment.unlink()

    def test_attached_arrays_are_read_only(self, fitted_tiny_model):
        segment, descriptor = publish_model_shm(fitted_tiny_model)
        try:
            attached, mapping = attach_model_shm(descriptor)
            column = attached.encoded.columns[0]  # zero-copy shm view
            with pytest.raises((ValueError, RuntimeError)):
                column[0] = 0  # one writer would corrupt every worker
            del attached
            mapping.close()
        finally:
            segment.close()
            segment.unlink()

    def test_resident_bytes_prices_the_arrays(self, fitted_tiny_model):
        segment, descriptor = publish_model_shm(fitted_tiny_model)
        try:
            # The registry charges disk- and shm-resident tenants alike:
            # array bytes dominate, header/alignment slack stays small.
            assert 0 < model_resident_bytes(fitted_tiny_model) <= descriptor["bytes"]
        finally:
            segment.close()
            segment.unlink()


# -------------------------------------------------------------- registry


class TestTenantRegistry:
    def test_budget_evicts_lru_and_reload_restores(self, two_tenant_prefixes):
        alpha, beta = two_tenant_prefixes
        with use_registry(MetricsRegistry()):
            registry = TenantRegistry(
                [
                    TenantSpec("default", prefix=alpha),
                    TenantSpec("beta", prefix=beta),
                ],
                residency_budget_bytes=1,  # tighter than any one model
            )
            registry.get("default")
            assert registry.loaded_names() == ["default"]
            registry.get("beta")  # loading beta evicts the LRU default
            assert registry.loaded_names() == ["beta"]
            assert registry.evictions == 1
            # Eviction never bricks a tenant: the next request reloads.
            bundle = registry.get("default")
            assert bundle.version == 1
            registry.close()
            assert registry.loaded_names() == []

    def test_single_oversized_tenant_still_serves(self, two_tenant_prefixes):
        alpha, _beta = two_tenant_prefixes
        with use_registry(MetricsRegistry()):
            registry = TenantRegistry(
                [TenantSpec("default", prefix=alpha)], residency_budget_bytes=1
            )
            assert registry.get("default").version == 1
            assert registry.loaded_names() == ["default"]

    def test_unknown_tenant_is_a_data_error(self, two_tenant_prefixes):
        alpha, _beta = two_tenant_prefixes
        registry = TenantRegistry([TenantSpec("default", prefix=alpha)])
        with pytest.raises(DataError, match="unknown tenant"):
            registry.get("nope")

    def test_backoff_is_per_tenant(self, two_tenant_prefixes, fitted_tiny_model):
        """One tenant's corrupt artifact must not stall healthy reloads.

        Regression for the single-model assumption: backoff state lives
        on each tenant's own ModelState, and maybe_reload_all fences
        per-tenant failures, so the healthy tenant keeps hot-swapping
        while the broken one sits in its backoff window.
        """
        alpha, beta = two_tenant_prefixes
        with use_registry(MetricsRegistry()):
            registry = TenantRegistry(
                [
                    TenantSpec("default", prefix=alpha),
                    TenantSpec("beta", prefix=beta),
                ],
                retry_base_seconds=3600.0,  # one failure parks beta for an hour
            )
            registry.get("default")
            registry.get("beta")
            # Corrupt beta's artifact (fresh signature, bad payload) and
            # land a legitimate new artifact for the default tenant.
            beta.with_suffix(".npz").write_bytes(b"garbage")
            save_model(fitted_tiny_model, alpha)
            assert registry.maybe_reload_all() == 1
            assert registry.get("default").version == 2
            assert registry.state("beta").reload_failures == 1
            assert registry.get("beta").version == 1  # old model still serves
            # A second healthy swap goes through while beta is backed off.
            save_model(fitted_tiny_model, alpha)
            assert registry.maybe_reload_all() == 1
            assert registry.get("default").version == 3


# ---------------------------------------------------------------- routing


@pytest.fixture
def tenant_server(two_tenant_prefixes):
    alpha, beta = two_tenant_prefixes
    with use_registry(MetricsRegistry()):
        registry = TenantRegistry(
            [
                TenantSpec("default", prefix=alpha),
                TenantSpec("beta", prefix=beta),
            ]
        )
        server = SkillServer(registry, ServeConfig(port=0, max_wait_ms=0.5))
        thread = ServerThread(server)
        host, port = thread.start()
        try:
            yield host, port, alpha
        finally:
            thread.stop()


class TestTenantRouting:
    def test_prefixed_and_default_routes(self, tenant_server):
        host, port, _alpha = tenant_server
        body = {"user": "u0", "time": 3.0, "k": 3}
        status, default_raw, _ = _request(host, port, "POST", "/predict", body)
        assert status == 200
        status, named_raw, _ = _request(
            host, port, "POST", "/t/default/predict", body
        )
        assert status == 200
        # Same tenant through either route: byte-identical responses.
        assert default_raw == named_raw
        status, beta_raw, _ = _request(host, port, "POST", "/t/beta/predict", body)
        assert status == 200
        # Different tenants really serve different models.
        assert json.loads(beta_raw)["top"] != json.loads(default_raw)["top"]

    def test_each_tenant_difficulty_and_skill(self, tenant_server):
        host, port, _alpha = tenant_server
        for tenant in ("default", "beta"):
            status, raw, _ = _request(
                host, port, "POST", f"/t/{tenant}/difficulty",
                {"items": ["i0", "i5"]},
            )
            assert status == 200
            status, raw, _ = _request(
                host, port, "GET", f"/t/{tenant}/skill?user=u0&time=3"
            )
            assert status == 200
            assert json.loads(raw)["model_version"] == 1

    def test_unknown_tenant_404(self, tenant_server):
        host, port, _alpha = tenant_server
        status, _raw, _ = _request(
            host, port, "POST", "/t/ghost/predict", {"user": "u0", "time": 1.0}
        )
        assert status == 404

    def test_tenant_scoped_healthz_and_global_summary(self, tenant_server):
        host, port, _alpha = tenant_server
        status, raw, _ = _request(host, port, "GET", "/t/beta/healthz")
        assert status == 200
        assert json.loads(raw)["tenant"] == "beta"
        status, raw, _ = _request(host, port, "GET", "/healthz")
        payload = json.loads(raw)
        assert set(payload["tenants"]["names"]) == {"default", "beta"}
        assert "beta" in payload["tenants"]["loaded"]
        assert payload["tenants"]["resident_bytes"] > 0

    def test_ingest_is_not_tenant_scoped(self, tenant_server):
        host, port, _alpha = tenant_server
        status, _raw, _ = _request(
            host, port, "POST", "/t/beta/ingest",
            {"events": [{"user": "u0", "item": "i0", "time": 1.0}]},
        )
        assert status == 404

    def test_tenant_metrics_appear(self, tenant_server):
        host, port, _alpha = tenant_server
        _request(host, port, "POST", "/t/beta/predict", {"user": "u0", "time": 1.0})
        status, raw, _ = _request(host, port, "GET", "/metrics")
        assert status == 200
        snapshot = json.loads(raw)
        assert snapshot["counters"]["serve.tenant.beta.requests"] >= 1
        assert snapshot["gauges"]["serve.tenant.models"] >= 1
        assert snapshot["gauges"]["serve.tenant.resident_bytes"] > 0

    def test_parity_with_single_tenant_server(self, tenant_server):
        """A multi-tenant deployment answers exactly like a dedicated
        single-model server for the same artifact and request."""
        host, port, alpha = tenant_server
        body = {"user": "u1", "time": 5.0, "k": 4}
        status, multi_raw, _ = _request(host, port, "POST", "/predict", body)
        assert status == 200
        with use_registry(MetricsRegistry()):
            solo = ServerThread(
                SkillServer(ModelState(alpha), ServeConfig(port=0, max_wait_ms=0.5))
            )
            solo_host, solo_port = solo.start()
            try:
                status, solo_raw, _ = _request(
                    solo_host, solo_port, "POST", "/predict", body
                )
            finally:
                solo.stop()
        assert status == 200
        assert multi_raw == solo_raw
