"""Tests for repro.analysis.preprocessing (lastness removal)."""

import pytest

from repro.analysis.preprocessing import remove_lastness
from repro.data.actions import Action, ActionLog
from repro.data.items import Item, ItemCatalog
from repro.exceptions import DataError


def _catalog(years):
    return ItemCatalog(
        [Item(id=f"m{k}", features={"g": "x"}, metadata={"year": y}) for k, y in enumerate(years)]
    )


class TestRemoveLastness:
    def test_cutoff_is_earliest_action(self):
        catalog = _catalog([1990.0, 2000.0, 2010.0])
        log = ActionLog.from_actions(
            [
                Action(time=2005.0, user="u", item="m0"),
                Action(time=2008.0, user="u", item="m2"),
            ]
        )
        clean_log, clean_catalog, stats = remove_lastness(log, catalog)
        assert stats.cutoff_time == 2005.0
        # m2 (2010) released after the cutoff: dropped from both sides
        assert "m2" not in clean_catalog
        assert "m2" not in clean_log.selected_items
        assert "m0" in clean_catalog and "m1" in clean_catalog

    def test_every_kept_item_selectable_at_any_time(self):
        catalog = _catalog([1990.0, 2003.0, 2007.0])
        log = ActionLog.from_actions(
            [
                Action(time=2004.0, user="a", item="m0"),
                Action(time=2009.0, user="b", item="m2"),
            ]
        )
        clean_log, clean_catalog, _ = remove_lastness(log, catalog)
        cutoff = log.earliest_time()
        for item in clean_catalog:
            assert item.metadata["year"] <= cutoff

    def test_users_with_no_remaining_actions_dropped(self):
        catalog = _catalog([1990.0, 2010.0])
        log = ActionLog.from_actions(
            [
                Action(time=2000.0, user="a", item="m0"),
                Action(time=2012.0, user="b", item="m1"),
            ]
        )
        clean_log, _, _ = remove_lastness(log, catalog)
        assert clean_log.users == ("a",)

    def test_missing_release_key(self):
        catalog = ItemCatalog([Item(id="m", features={"g": "x"})])
        log = ActionLog.from_actions([Action(time=2000.0, user="u", item="m")])
        with pytest.raises(DataError):
            remove_lastness(log, catalog)

    def test_custom_release_key(self):
        catalog = ItemCatalog(
            [Item(id="m", features={"g": "x"}, metadata={"released": 1990.0})]
        )
        log = ActionLog.from_actions([Action(time=2000.0, user="u", item="m")])
        clean_log, clean_catalog, stats = remove_lastness(
            log, catalog, release_key="released"
        )
        assert len(clean_catalog) == 1
        assert stats.items_after == 1

    def test_stats_reported(self):
        catalog = _catalog([1990.0, 2010.0])
        log = ActionLog.from_actions(
            [
                Action(time=2000.0, user="a", item="m0"),
                Action(time=2012.0, user="a", item="m1"),
            ]
        )
        _, _, stats = remove_lastness(log, catalog)
        assert stats.items_before == 2
        assert stats.items_after == 1
        assert stats.actions_before == 2
        assert stats.actions_after == 1
