"""Golden-path integration tests: every domain through the full pipeline.

One test per simulated domain runs the complete life of a dataset —
validate → fit → interpret → difficulty → calibrate → (predict / rate
where the domain supports it) — at tiny scale.  These are the tests that
catch cross-module seams no unit test owns.
"""

import numpy as np
import pytest

from repro.analysis import (
    difficulty_calibration,
    feature_trend,
    summarize_trajectories,
    top_dominated,
)
from repro.core import fit_skill_model, generation_difficulty
from repro.data import validate_inputs
from repro.data.splits import holdout_last_position
from repro.recsys import predict_items, random_guess_expectation


def _pipeline(ds, num_levels, *, with_items_prediction=True, trainer_kwargs=None):
    """Run the shared portion of the pipeline; return the fitted model."""
    kwargs = {"init_min_actions": 10, "max_iterations": 15, **(trainer_kwargs or {})}
    report = validate_inputs(ds.log, ds.catalog, ds.feature_set)
    assert report.ok, report.to_text()

    model = fit_skill_model(ds.log, ds.catalog, ds.feature_set, num_levels, **kwargs)
    assert np.isfinite(model.log_likelihood)

    summary = summarize_trajectories(model)
    assert summary.num_users == ds.log.num_users
    assert 1.0 <= summary.mean_final_level <= num_levels

    difficulty = generation_difficulty(model, prior="empirical")
    assert len(difficulty) == len(ds.catalog)
    assert all(1.0 <= d <= num_levels for d in difficulty.values())

    curve = difficulty_calibration(model, ds.log, difficulty, num_bins=3)
    assert sum(b.num_actions for b in curve.bins) == ds.log.num_actions

    if with_items_prediction:
        train, held = holdout_last_position(ds.log)
        holdout_model = fit_skill_model(
            train, ds.catalog, ds.feature_set, num_levels, **kwargs
        )
        result = predict_items(holdout_model, held)
        rand_acc, _ = random_guess_expectation(len(ds.catalog))
        assert result.acc_at_10 >= rand_acc * 0.5  # never catastrophically bad
    return model


class TestSyntheticPipeline:
    def test_full_path(self):
        from repro.synth import SyntheticConfig, generate_synthetic

        ds = generate_synthetic(SyntheticConfig(num_users=60, num_items=400, seed=21))
        model = _pipeline(ds, 5, trainer_kwargs={"init_min_actions": 30})
        truth = ds.true_skill_array()
        estimate = model.all_assigned_levels()
        assert np.corrcoef(truth, estimate)[0, 1] > 0.4


class TestLanguagePipeline:
    def test_full_path(self):
        from repro.synth import LanguageConfig, generate_language

        ds = generate_language(LanguageConfig(num_users=120, seed=21))
        # Language items are selected exactly once; ID ranking is undefined.
        model = _pipeline(ds, 3, with_items_prediction=False)
        corrections = feature_trend(model, "corrections")
        assert corrections.means[-1] < corrections.means[0]
        unskilled, skilled = top_dominated(model, "rule", k=10)
        assert unskilled and skilled


class TestCookingPipeline:
    def test_full_path(self):
        from repro.synth import CookingConfig, generate_cooking

        ds = generate_cooking(CookingConfig(num_users=100, num_items=400, seed=21))
        model = _pipeline(ds, 5)
        steps = feature_trend(model, "num_steps")
        assert steps.means[-1] > steps.means[1]  # complexity grows (above L1)


class TestBeerPipeline:
    def test_full_path_including_ratings(self):
        from repro.recsys import run_rating_task
        from repro.recsys.ffm import FFMConfig
        from repro.synth import BeerConfig, generate_beer

        ds = generate_beer(
            BeerConfig(num_users=50, num_items=200, mean_sequence_length=40, seed=21)
        )
        model = _pipeline(ds, 5)
        abv = feature_trend(model, "abv")
        assert abv.means[-1] > abv.means[0]

        rating = run_rating_task(
            ds.log, ds.catalog, ds.feature_set, 5,
            holdout="last", seed=0,
            ffm_config=FFMConfig(epochs=3, num_factors=4),
            init_min_actions=10, max_iterations=10,
        )
        assert all(0 <= v <= 5 for v in rating.rmse.values())


class TestFilmPipeline:
    def test_full_path_including_preprocessing(self):
        from repro.analysis import remove_lastness
        from repro.synth import FilmConfig, generate_film

        ds = generate_film(
            FilmConfig(num_users=60, num_items=250, mean_sequence_length=25, seed=21)
        )
        _pipeline(ds, 5)
        clean_log, clean_catalog, stats = remove_lastness(ds.log, ds.catalog)
        assert stats.items_after < stats.items_before
        # the preprocessed data still trains
        model = fit_skill_model(
            clean_log, clean_catalog, ds.feature_set, 5,
            init_min_actions=10, max_iterations=10,
        )
        assert np.isfinite(model.log_likelihood)


class TestForgettingPipeline:
    def test_full_path_with_decay_trainer(self):
        from repro.core import ForgettingConfig, fit_forgetting_model
        from repro.synth import ForgettingDataConfig, generate_forgetting
        from repro.synth.generator import SyntheticConfig

        ds = generate_forgetting(
            ForgettingDataConfig(
                base=SyntheticConfig(num_users=50, num_items=300, seed=21, level_up_prob=0.15)
            )
        )
        report = validate_inputs(ds.log, ds.catalog, ds.feature_set)
        assert report.ok
        model = fit_forgetting_model(
            ds.log, ds.catalog, ds.feature_set,
            ForgettingConfig(num_levels=5, half_life=20.0, init_min_actions=20, max_iterations=10),
        )
        difficulty = generation_difficulty(model, prior="empirical")
        assert all(1.0 <= d <= 5.0 for d in difficulty.values())
        # trajectory analytics tolerate the non-monotone trainer
        summary = summarize_trajectories(model)
        assert summary.num_users == ds.log.num_users
