"""Tests for the sufficient-statistics update engine.

Pins the PR's two exactness guarantees:

- ``fit_from_stats(sufficient_stats(values)) == fit(values)`` bit-identically
  for all four distributions (hard and soft/weighted paths), and
- :class:`~repro.core.stats.SkillStats` updated incrementally via
  ``subtract``/``add`` deltas equals a cold rebuild exactly, so refitting
  only dirty cells gives the same parameters as refitting everything.
"""

import numpy as np
import pytest

from repro.core.distributions import Categorical, Gamma, LogNormal, Poisson
from repro.core.features import FeatureKind, FeatureSet, FeatureSpec
from repro.core.model import SkillParameters, _cell_cache_key
from repro.core.stats import SkillStats
from repro.data.items import Item, ItemCatalog
from repro.exceptions import ConfigurationError


def _cells_equal(a, b) -> bool:
    """Exact (bit-level) equality of two fitted distribution cells."""
    key_a, key_b = _cell_cache_key(a), _cell_cache_key(b)
    assert key_a is not None and key_b is not None
    return key_a == key_b


@pytest.fixture
def full_kind_encoded():
    """An encoded catalog exercising all four feature kinds."""
    rng = np.random.default_rng(7)
    items = [
        Item(
            id=f"i{k}",
            features={
                "color": ["red", "green", "blue"][k % 3],
                "steps": int(rng.integers(0, 6)),
                "abv": float(rng.gamma(3.0, 1.5) + 0.1),
                "latency": float(rng.lognormal(0.5, 0.8) + 0.01),
            },
        )
        for k in range(20)
    ]
    feature_set = FeatureSet(
        [
            FeatureSpec("color", FeatureKind.CATEGORICAL),
            FeatureSpec("steps", FeatureKind.COUNT),
            FeatureSpec("abv", FeatureKind.POSITIVE),
            FeatureSpec("latency", FeatureKind.LOG_POSITIVE),
        ]
    ).with_id_feature()
    return feature_set.encode(ItemCatalog(items))


def _random_assignment(encoded, num_levels, size, seed):
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, encoded.num_items, size=size)
    levels = rng.integers(0, num_levels, size=size)
    return rows.astype(np.int64), levels.astype(np.int64)


# ---------------------------------------------------------------------------
# Distribution-level property tests: stats path == value path, bit-identical.
# ---------------------------------------------------------------------------


class TestStatsFitIdentity:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("weighted", [False, True])
    def test_poisson(self, seed, weighted):
        rng = np.random.default_rng(seed)
        values = rng.poisson(3.0, size=int(rng.integers(1, 200)))
        weights = rng.random(len(values)) if weighted else None
        expected = Poisson.fit(values, weights=weights)
        stats = Poisson.sufficient_stats(values, weights=weights)
        assert Poisson.fit_from_stats(*stats).rate == expected.rate

    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("weighted", [False, True])
    def test_gamma(self, seed, weighted):
        rng = np.random.default_rng(seed)
        values = rng.gamma(2.0, 1.5, size=int(rng.integers(1, 200))) + 1e-6
        weights = rng.random(len(values)) if weighted else None
        expected = Gamma.fit(values, weights=weights)
        fitted = Gamma.fit_from_stats(*Gamma.sufficient_stats(values, weights=weights))
        assert (fitted.shape, fitted.scale) == (expected.shape, expected.scale)

    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("weighted", [False, True])
    def test_lognormal(self, seed, weighted):
        rng = np.random.default_rng(seed)
        values = rng.lognormal(0.3, 0.9, size=int(rng.integers(1, 200)))
        weights = rng.random(len(values)) if weighted else None
        expected = LogNormal.fit(values, weights=weights)
        fitted = LogNormal.fit_from_stats(
            *LogNormal.sufficient_stats(values, weights=weights)
        )
        assert (fitted.mu, fitted.sigma) == (expected.mu, expected.sigma)

    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("weighted", [False, True])
    @pytest.mark.parametrize("smoothing", [0.01, 1.0])
    def test_categorical(self, seed, weighted, smoothing):
        rng = np.random.default_rng(seed)
        num_categories = int(rng.integers(2, 8))
        values = rng.integers(0, num_categories, size=int(rng.integers(1, 200)))
        weights = rng.random(len(values)) if weighted else None
        expected = Categorical.fit(
            values, num_categories=num_categories, smoothing=smoothing, weights=weights
        )
        counts = Categorical.sufficient_stats(
            values, num_categories=num_categories, weights=weights
        )
        fitted = Categorical.fit_from_stats(counts, smoothing=smoothing)
        assert np.array_equal(fitted.probs, expected.probs)

    def test_empty_samples(self):
        assert Poisson.fit_from_stats(*Poisson.sufficient_stats([])).rate == Poisson.fit([]).rate
        gamma = Gamma.fit_from_stats(*Gamma.sufficient_stats([]))
        assert (gamma.shape, gamma.scale) == (1.0, 1.0)
        lognormal = LogNormal.fit_from_stats(*LogNormal.sufficient_stats([]))
        assert (lognormal.mu, lognormal.sigma) == (0.0, 1.0)
        cat = Categorical.fit_from_stats(
            Categorical.sufficient_stats([], num_categories=4), smoothing=0.5
        )
        assert np.array_equal(cat.probs, Categorical.fit([], num_categories=4, smoothing=0.5).probs)

    def test_constant_samples(self):
        values = np.full(40, 3.5)
        gamma = Gamma.fit_from_stats(*Gamma.sufficient_stats(values))
        expected = Gamma.fit(values)
        assert (gamma.shape, gamma.scale) == (expected.shape, expected.scale)
        lognormal = LogNormal.fit_from_stats(*LogNormal.sufficient_stats(values))
        assert lognormal.sigma == LogNormal.fit(values).sigma == 1e-6

    def test_unsmoothed_categorical_edge(self):
        counts = Categorical.sufficient_stats([0, 1, 1], num_categories=3)
        fitted = Categorical.fit_from_stats(counts, smoothing=0.0)
        assert np.array_equal(
            fitted.probs, Categorical.fit([0, 1, 1], num_categories=3, smoothing=0.0).probs
        )
        with pytest.raises(ConfigurationError):
            Categorical.fit_from_stats(np.zeros(3), smoothing=0.0)
        with pytest.raises(ConfigurationError):
            Categorical.fit_from_stats(np.array([1.0, -1.0]))


# ---------------------------------------------------------------------------
# SkillStats: incremental deltas vs cold rebuilds.
# ---------------------------------------------------------------------------


class TestSkillStats:
    def test_cold_build_counts(self, full_kind_encoded):
        rows, levels = _random_assignment(full_kind_encoded, 4, 300, seed=0)
        stats = SkillStats.from_assignments(
            full_kind_encoded, rows, levels, num_levels=4
        )
        assert np.array_equal(
            stats.level_counts, np.bincount(levels, minlength=4)
        )
        assert stats.item_counts.sum() == 300
        for f, vocab in enumerate(full_kind_encoded.vocabularies):
            if vocab is None:
                continue
            assert stats.category_counts(f).sum() == 300

    def test_subtract_add_round_trip_exact(self, full_kind_encoded):
        rows, levels = _random_assignment(full_kind_encoded, 4, 300, seed=1)
        stats = SkillStats.from_assignments(
            full_kind_encoded, rows, levels, num_levels=4
        )
        before_levels = stats.level_counts.copy()
        before_items = stats.item_counts.copy()
        before_cats = {
            f: stats.category_counts(f).copy()
            for f, vocab in enumerate(full_kind_encoded.vocabularies)
            if vocab is not None
        }
        rng = np.random.default_rng(2)
        moved = rng.choice(300, size=80, replace=False)
        new_levels = (levels[moved] + 1) % 4
        stats.update(rows[moved], levels[moved], new_levels)
        stats.update(rows[moved], new_levels, levels[moved])  # undo
        assert np.array_equal(stats.level_counts, before_levels)
        assert np.array_equal(stats.item_counts, before_items)
        for f, before in before_cats.items():
            assert np.array_equal(stats.category_counts(f), before)

    def test_incremental_equals_cold(self, full_kind_encoded):
        rows, levels = _random_assignment(full_kind_encoded, 4, 300, seed=3)
        stats = SkillStats.from_assignments(
            full_kind_encoded, rows, levels, num_levels=4
        )
        rng = np.random.default_rng(4)
        new_levels = levels.copy()
        moved = rng.choice(300, size=120, replace=False)
        new_levels[moved] = rng.integers(0, 4, size=len(moved))
        really_moved = np.flatnonzero(new_levels != levels)
        stats.update(rows[really_moved], levels[really_moved], new_levels[really_moved])
        cold = SkillStats.from_assignments(
            full_kind_encoded, rows, new_levels, num_levels=4
        )
        assert np.array_equal(stats.level_counts, cold.level_counts)
        assert np.array_equal(stats.item_counts, cold.item_counts)
        for f, vocab in enumerate(full_kind_encoded.vocabularies):
            if vocab is not None:
                assert np.array_equal(
                    stats.category_counts(f), cold.category_counts(f)
                )
        # ... and every refit cell is bit-identical too.
        for s in range(4):
            for f in range(len(full_kind_encoded.feature_set)):
                assert _cells_equal(stats.fit_cell(s, f), cold.fit_cell(s, f))

    def test_subtract_never_added_raises(self, full_kind_encoded):
        rows, levels = _random_assignment(full_kind_encoded, 3, 50, seed=5)
        stats = SkillStats.from_assignments(
            full_kind_encoded, rows, levels, num_levels=3
        )
        before = stats.level_counts.copy()
        with pytest.raises(ConfigurationError):
            stats.subtract(
                np.array([rows[0]]), np.array([(levels[0] + 1) % 3])
            )
        assert np.array_equal(stats.level_counts, before)  # untouched

    def test_validation_messages(self, full_kind_encoded):
        with pytest.raises(ConfigurationError, match="must align"):
            SkillStats.from_assignments(
                full_kind_encoded, np.arange(3), np.arange(4), num_levels=2
            )
        with pytest.raises(ConfigurationError, match="assigned level"):
            SkillStats.from_assignments(
                full_kind_encoded, np.array([0]), np.array([9]), num_levels=2
            )
        with pytest.raises(ConfigurationError, match="action row"):
            SkillStats.from_assignments(
                full_kind_encoded, np.array([-1]), np.array([0]), num_levels=2
            )


# ---------------------------------------------------------------------------
# Parameter-grid level: dirty-cell refits and the soft path.
# ---------------------------------------------------------------------------


class TestFitFromStats:
    def test_dirty_refit_equals_full_refit(self, full_kind_encoded):
        rows, levels = _random_assignment(full_kind_encoded, 4, 300, seed=6)
        stats = SkillStats.from_assignments(
            full_kind_encoded, rows, levels, num_levels=4
        )
        previous = SkillParameters.fit_from_stats(stats)
        # Move a slice of level-0 actions to level 1: only those two
        # levels' cells are dirty.
        moved = np.flatnonzero(levels == 0)[:20]
        dirty = stats.update(rows[moved], levels[moved], np.ones(len(moved), np.int64))
        assert set(int(s) for s in dirty) == {0, 1}
        partial = SkillParameters.fit_from_stats(
            stats, previous=previous, dirty_levels=dirty
        )
        full = SkillParameters.fit_from_stats(stats)
        for s in range(4):
            for f in range(len(full_kind_encoded.feature_set)):
                assert _cells_equal(partial.cells[s][f], full.cells[s][f])
        # Clean levels reuse the previous objects outright.
        assert partial.cells[2] is previous.cells[2]
        assert partial.cells[3] is previous.cells[3]

    def test_dirty_levels_require_previous(self, full_kind_encoded):
        rows, levels = _random_assignment(full_kind_encoded, 3, 60, seed=7)
        stats = SkillStats.from_assignments(
            full_kind_encoded, rows, levels, num_levels=3
        )
        with pytest.raises(ConfigurationError, match="previous"):
            SkillParameters.fit_from_stats(stats, dirty_levels=[0])

    def test_fit_from_assignments_unchanged_route(self, full_kind_encoded):
        """The rerouted classmethod produces the same grid as fitting each
        cell directly from the raw per-level values."""
        rows, levels = _random_assignment(full_kind_encoded, 3, 200, seed=8)
        fitted = SkillParameters.fit_from_assignments(
            full_kind_encoded, rows, levels, num_levels=3
        )
        stats = SkillStats.from_assignments(
            full_kind_encoded, rows, levels, num_levels=3
        )
        for s in range(3):
            for f in range(len(full_kind_encoded.feature_set)):
                assert _cells_equal(fitted.cells[s][f], stats.fit_cell(s, f))

    def test_soft_path_matches_per_cell_weighted_fits(self, full_kind_encoded):
        """fit_from_responsibilities == dist.fit(values, weights=resp[:, s])
        bit-identically, for every cell."""
        from repro.core.distributions import distribution_for_kind

        rng = np.random.default_rng(9)
        rows = rng.integers(0, full_kind_encoded.num_items, size=150).astype(np.int64)
        resp = rng.random((150, 3))
        resp /= resp.sum(axis=1, keepdims=True)
        fitted = SkillParameters.fit_from_responsibilities(
            full_kind_encoded, rows, resp
        )
        feature_set = full_kind_encoded.feature_set
        for f, spec in enumerate(feature_set):
            values = full_kind_encoded.columns[f][rows]
            dist_cls = distribution_for_kind(spec.kind)
            for s in range(3):
                if spec.kind is FeatureKind.CATEGORICAL:
                    expected = dist_cls.fit(
                        values,
                        num_categories=len(full_kind_encoded.vocabularies[f]),
                        weights=resp[:, s],
                    )
                else:
                    expected = dist_cls.fit(values, weights=resp[:, s])
                assert _cells_equal(fitted.cells[s][f], expected)


# ---------------------------------------------------------------------------
# Map-reduce combiner: merge across arbitrary user partitions == cold pass.
# ---------------------------------------------------------------------------


def _random_users(encoded, num_levels, num_users, seed):
    """Per-user (rows, levels) chunks with jagged lengths."""
    rng = np.random.default_rng(seed)
    users = []
    for _ in range(num_users):
        n = int(rng.integers(1, 12))
        rows = rng.integers(0, encoded.num_items, size=n).astype(np.int64)
        levels = rng.integers(0, num_levels, size=n).astype(np.int64)
        users.append((rows, levels))
    return users


def _counts_equal(a, b, encoded) -> None:
    assert np.array_equal(a.level_counts, b.level_counts)
    assert np.array_equal(a.item_counts, b.item_counts)
    for f, vocab in enumerate(encoded.vocabularies):
        if vocab is not None:
            assert np.array_equal(a.category_counts(f), b.category_counts(f))


class TestMergePartitions:
    """``SkillStats.merge`` is the sharded trainer's reduce step: per-shard
    counts summed with exact integer addition must equal a cold single-pass
    build for *any* partition of the users — that invariant is what makes
    map-reduce fits bit-identical to in-RAM fits.  The fixture covers all
    four distributions (Categorical, Poisson, Gamma, LogNormal)."""

    @pytest.mark.parametrize("seed", range(8))
    def test_random_partition_equals_cold(self, full_kind_encoded, seed):
        encoded = full_kind_encoded
        num_levels = 4
        rng = np.random.default_rng(100 + seed)
        users = _random_users(encoded, num_levels, int(rng.integers(1, 25)), seed)
        all_rows = np.concatenate([u[0] for u in users])
        all_levels = np.concatenate([u[1] for u in users])
        cold = SkillStats.from_assignments(
            encoded, all_rows, all_levels, num_levels=num_levels
        )
        # Sometimes more shards than users, so empty shards and
        # single-user shards both occur in the sample.
        num_shards = int(rng.integers(1, len(users) + 4))
        owner = rng.integers(0, num_shards, size=len(users))
        merged = SkillStats(encoded, num_levels)
        for s in range(num_shards):
            part = SkillStats(encoded, num_levels)
            for u in np.flatnonzero(owner == s):
                part.add(users[u][0], users[u][1])
            merged.merge(part)
        _counts_equal(merged, cold, encoded)
        p_merged = SkillParameters.fit_from_stats(merged)
        p_cold = SkillParameters.fit_from_stats(cold)
        for s in range(num_levels):
            for f in range(len(encoded.feature_set)):
                assert _cells_equal(p_merged.cells[s][f], p_cold.cells[s][f])

    def test_merge_order_independent(self, full_kind_encoded):
        encoded = full_kind_encoded
        users = _random_users(encoded, 3, 9, seed=21)
        parts = []
        for rows, levels in users:
            part = SkillStats(encoded, 3)
            part.add(rows, levels)
            parts.append(part)
        forward = SkillStats(encoded, 3)
        for part in parts:
            forward.merge(part)
        backward = SkillStats(encoded, 3)
        for part in reversed(parts):
            backward.merge(part)
        _counts_equal(forward, backward, encoded)

    def test_single_user_and_empty_shards(self, full_kind_encoded):
        encoded = full_kind_encoded
        users = _random_users(encoded, 3, 5, seed=42)
        cold = SkillStats.from_assignments(
            encoded,
            np.concatenate([u[0] for u in users]),
            np.concatenate([u[1] for u in users]),
            num_levels=3,
        )
        merged = SkillStats(encoded, 3)
        merged.merge(SkillStats(encoded, 3))  # leading empty shard
        for rows, levels in users:  # one user per shard
            part = SkillStats(encoded, 3)
            part.add(rows, levels)
            merged.merge(part)
        merged.merge(SkillStats(encoded, 3))  # trailing empty shard
        _counts_equal(merged, cold, encoded)
        for s in range(3):
            for f in range(len(encoded.feature_set)):
                assert _cells_equal(merged.fit_cell(s, f), cold.fit_cell(s, f))

    def test_merge_shape_mismatch_raises(self, full_kind_encoded):
        stats = SkillStats(full_kind_encoded, 3)
        with pytest.raises(ConfigurationError, match="merge"):
            stats.merge(SkillStats(full_kind_encoded, 4))
