"""Tests for repro.core.satisfaction (satisfaction-weighted training)."""

import numpy as np
import pytest

from repro.core.satisfaction import (
    SatisfactionConfig,
    fit_satisfaction_model,
    rating_satisfaction,
)
from repro.data.actions import Action, ActionLog
from repro.exceptions import ConfigurationError, DataError


def _rated_log():
    rng = np.random.default_rng(4)
    actions = []
    for u in range(4):
        for t in range(12):
            actions.append(
                Action(
                    time=float(t),
                    user=f"u{u}",
                    item=f"i{int(rng.integers(12))}",
                    rating=float(rng.uniform(1, 5)),
                )
            )
    return ActionLog.from_actions(actions)


class TestRatingSatisfaction:
    def test_maps_into_floor_one(self):
        weight = rating_satisfaction(max_rating=5.0, floor=0.1)
        assert weight(Action(time=0, user="u", item="i", rating=5.0)) == pytest.approx(1.0)
        assert weight(Action(time=0, user="u", item="i", rating=0.0)) == pytest.approx(0.1)
        mid = weight(Action(time=0, user="u", item="i", rating=2.5))
        assert 0.1 < mid < 1.0

    def test_unrated_action_rejected(self):
        weight = rating_satisfaction()
        with pytest.raises(DataError):
            weight(Action(time=0, user="u", item="i"))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            rating_satisfaction(max_rating=0)
        with pytest.raises(ConfigurationError):
            rating_satisfaction(floor=1.0)


class TestFitSatisfactionModel:
    def test_fits_rated_log(self, tiny_catalog, tiny_feature_set):
        log = _rated_log()
        model = fit_satisfaction_model(
            log,
            tiny_catalog,
            tiny_feature_set,
            SatisfactionConfig(num_levels=3, init_min_actions=5, max_iterations=15),
        )
        assert set(model.assignments) == set(log.users)
        assert np.isfinite(model.log_likelihood)

    def test_unrated_log_rejected(self, tiny_log, tiny_catalog, tiny_feature_set):
        with pytest.raises(DataError):
            fit_satisfaction_model(
                tiny_log,
                tiny_catalog,
                tiny_feature_set,
                SatisfactionConfig(num_levels=2, init_min_actions=5, max_iterations=3),
            )

    def test_custom_satisfaction_function(self, tiny_log, tiny_catalog, tiny_feature_set):
        model = fit_satisfaction_model(
            tiny_log,
            tiny_catalog,
            tiny_feature_set,
            SatisfactionConfig(
                num_levels=2,
                satisfaction=lambda action: 1.0,  # constant weights = base model
                init_min_actions=5,
                max_iterations=10,
            ),
        )
        assert np.isfinite(model.log_likelihood)

    def test_constant_weights_match_base_trainer(self, tiny_log, tiny_catalog, tiny_feature_set):
        """Weight 1 everywhere must reproduce the unweighted trainer."""
        from repro.core.training import fit_skill_model

        base = fit_skill_model(
            tiny_log, tiny_catalog, tiny_feature_set, 3, init_min_actions=5, max_iterations=15
        )
        weighted = fit_satisfaction_model(
            tiny_log,
            tiny_catalog,
            tiny_feature_set,
            SatisfactionConfig(
                num_levels=3,
                satisfaction=lambda action: 1.0,
                init_min_actions=5,
                max_iterations=15,
            ),
        )
        for user in tiny_log.users:
            np.testing.assert_array_equal(
                base.skill_trajectory(user), weighted.skill_trajectory(user)
            )

    def test_out_of_range_weights_rejected(self, tiny_log, tiny_catalog, tiny_feature_set):
        with pytest.raises(ConfigurationError):
            fit_satisfaction_model(
                tiny_log,
                tiny_catalog,
                tiny_feature_set,
                SatisfactionConfig(
                    num_levels=2,
                    satisfaction=lambda action: 2.0,
                    init_min_actions=5,
                    max_iterations=3,
                ),
            )

    def test_shrinks_overreach_anomaly(self):
        """The headline behaviour: down-weighting failures cleans level 1."""
        from repro.core.training import fit_skill_model
        from repro.synth.cooking import CookingConfig, generate_cooking

        ds = generate_cooking(
            CookingConfig(num_users=200, num_items=800, seed=7, novice_overreach=0.5)
        )
        base = fit_skill_model(
            ds.log, ds.catalog, ds.feature_set, 5, init_min_actions=15, max_iterations=20
        )
        weighted = fit_satisfaction_model(
            ds.log,
            ds.catalog,
            ds.feature_set,
            SatisfactionConfig(num_levels=5, init_min_actions=15, max_iterations=20),
        )
        base_gap = base.feature_level_means("num_steps")[0] - base.feature_level_means("num_steps")[1]
        weighted_gap = (
            weighted.feature_level_means("num_steps")[0]
            - weighted.feature_level_means("num_steps")[1]
        )
        assert weighted_gap < base_gap
