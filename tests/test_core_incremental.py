"""Tests for repro.core.incremental (fold-in updates)."""

import numpy as np
import pytest

from repro.core.incremental import extend_model
from repro.core.training import fit_skill_model
from repro.data.actions import Action
from repro.exceptions import ConfigurationError, DataError


def _new_actions(user, start_time, items):
    return [
        Action(time=start_time + k, user=user, item=item) for k, item in enumerate(items)
    ]


class TestExtendModel:
    def test_absorbs_new_actions_for_existing_user(
        self, fitted_tiny_model, tiny_log
    ):
        new = _new_actions("u0", 100.0, ["i8", "i9", "i10"])
        updated, merged = extend_model(fitted_tiny_model, tiny_log, new)
        assert len(updated.skill_trajectory("u0")) == len(tiny_log.sequence("u0")) + 3
        assert merged.num_actions == tiny_log.num_actions + 3
        # untouched users keep identical trajectories
        np.testing.assert_array_equal(
            updated.skill_trajectory("u1"), fitted_tiny_model.skill_trajectory("u1")
        )

    def test_new_user_supported(self, fitted_tiny_model, tiny_log):
        new = _new_actions("newcomer", 0.0, ["i0", "i1", "i4"])
        updated, merged = extend_model(fitted_tiny_model, tiny_log, new)
        trajectory = updated.skill_trajectory("newcomer")
        assert len(trajectory) == 3
        assert np.all(np.diff(trajectory) >= 0)
        assert "newcomer" in merged

    def test_new_item_rejected_and_model_untouched(self, fitted_tiny_model, tiny_log):
        before = {
            user: fitted_tiny_model.assignments[user].copy()
            for user in fitted_tiny_model.assignments
        }
        with pytest.raises(DataError, match="ghost"):
            extend_model(
                fitted_tiny_model, tiny_log, [Action(time=0.0, user="u0", item="ghost")]
            )
        # The rejection happened before any mutation: same users, same arrays.
        assert list(fitted_tiny_model.assignments) == list(before)
        for user, levels in before.items():
            np.testing.assert_array_equal(
                fitted_tiny_model.assignments[user], levels
            )

    def test_empty_actions_is_a_noop(self, fitted_tiny_model, tiny_log):
        """An empty fold is the steady state of a streaming caller polling
        an idle WAL — it must be a cheap no-op, not an error."""
        model, log = extend_model(fitted_tiny_model, tiny_log, [])
        assert model is fitted_tiny_model
        assert log is tiny_log

    def test_new_user_folds_in_twice(self, fitted_tiny_model, tiny_log):
        first, log1 = extend_model(
            fitted_tiny_model, tiny_log, _new_actions("newcomer", 0.0, ["i0", "i1"])
        )
        second, log2 = extend_model(
            first, log1, _new_actions("newcomer", 10.0, ["i4", "i5"])
        )
        trajectory = second.skill_trajectory("newcomer")
        assert len(trajectory) == 4
        assert np.all(np.diff(trajectory) >= 0)  # monotone within the merged history
        assert len(log2.sequence("newcomer")) == 4

    def test_negative_refit_rejected(self, fitted_tiny_model, tiny_log):
        with pytest.raises(ConfigurationError):
            extend_model(
                fitted_tiny_model,
                tiny_log,
                _new_actions("u0", 100.0, ["i0"]),
                refit_iterations=-1,
            )

    def test_frozen_parameters_path_keeps_theta(self, fitted_tiny_model, tiny_log):
        new = _new_actions("u0", 100.0, ["i5"])
        updated, _ = extend_model(fitted_tiny_model, tiny_log, new)
        np.testing.assert_allclose(
            updated.item_score_table(), fitted_tiny_model.item_score_table()
        )

    def test_refit_iterations_update_theta(self, fitted_tiny_model, tiny_log):
        # a burst of new actions concentrated on one item shifts Θ
        new = _new_actions("u0", 100.0, ["i11"] * 6)
        updated, _ = extend_model(
            fitted_tiny_model, tiny_log, new, refit_iterations=3
        )
        assert updated.trace.num_iterations > fitted_tiny_model.trace.num_iterations
        assert not np.allclose(
            updated.item_score_table(), fitted_tiny_model.item_score_table()
        )

    def test_matches_full_retrain_quality(self, tiny_catalog, tiny_feature_set):
        """Fold-in + refit should land near a from-scratch fit's likelihood."""
        from repro.data.actions import ActionLog

        rng = np.random.default_rng(0)
        actions = [
            Action(time=float(t), user=f"u{u}", item=f"i{int(rng.integers(12))}")
            for u in range(4)
            for t in range(15)
        ]
        first, later = actions[:40], actions[40:]
        base_log = ActionLog.from_actions(first)
        model = fit_skill_model(
            base_log, tiny_catalog, tiny_feature_set, 3, init_min_actions=5, max_iterations=20
        )
        incremental, merged = extend_model(
            model, base_log, later, refit_iterations=10
        )
        full = fit_skill_model(
            merged, tiny_catalog, tiny_feature_set, 3, init_min_actions=5, max_iterations=20
        )
        # Both reach local optima of the same objective; the warm-started
        # fold-in must be no worse than scratch beyond a small tolerance
        # (it is often better — more data behind its starting point).
        assert incremental.trace.log_likelihoods[-1] >= full.log_likelihood - 0.05 * abs(
            full.log_likelihood
        )

    def test_fold_in_reuses_cached_sequence_rows(
        self, fitted_tiny_model, tiny_log, monkeypatch
    ):
        """Training populated the encoded catalog's per-sequence row cache,
        so a fold-in — even with refit iterations over every user — only
        re-encodes the sequences that actually changed."""
        from repro.core.features import EncodedItems

        calls = []
        original = EncodedItems.rows_for

        def counting(self, item_ids):
            calls.append(1)
            return original(self, item_ids)

        monkeypatch.setattr(EncodedItems, "rows_for", counting)
        new = _new_actions("u0", 100.0, ["i8", "i9"])
        updated, _ = extend_model(
            fitted_tiny_model, tiny_log, new, refit_iterations=2
        )
        # Only u0's merged sequence is new; u1/u2 keep their original
        # ActionSequence objects and hit the cache in every refit pass.
        assert len(calls) == 1
        assert len(updated.skill_trajectory("u0")) == len(tiny_log.sequence("u0")) + 2

    def test_chained_extensions(self, fitted_tiny_model, tiny_log):
        model, log = fitted_tiny_model, tiny_log
        for round_number in range(3):
            new = _new_actions("u2", 200.0 + 10 * round_number, ["i3", "i7"])
            model, log = extend_model(model, log, new)
        assert len(model.skill_trajectory("u2")) == len(tiny_log.sequence("u2")) + 6
