"""Tests for repro.core.parallel: parallel results must equal serial ones."""

import numpy as np
import pytest

from repro.core.dp import best_monotone_path
from repro.core.model import SkillParameters
from repro.core.parallel import ParallelConfig, PoolAssigner, assign_paths, make_cell_fitter
from repro.core.training import fit_skill_model
from repro.exceptions import ConfigurationError


@pytest.fixture
def score_table():
    rng = np.random.default_rng(0)
    return rng.normal(size=(4, 50))


@pytest.fixture
def user_rows():
    rng = np.random.default_rng(1)
    return [rng.integers(0, 50, size=rng.integers(1, 40)) for _ in range(13)]


class TestParallelConfig:
    def test_defaults_serial(self):
        config = ParallelConfig()
        assert not config.users and not config.skills and not config.features
        assert not config.any_update_axis

    def test_all_axes(self):
        config = ParallelConfig.all_axes(workers=3)
        assert config.users and config.skills and config.features
        assert config.workers == 3

    def test_all_axes_default_workers(self):
        assert ParallelConfig.all_axes().workers >= 1

    def test_invalid_workers(self):
        with pytest.raises(ConfigurationError):
            ParallelConfig(workers=0)


class TestAssignPaths:
    def test_serial_matches_direct_dp(self, score_table, user_rows):
        results = assign_paths(score_table, user_rows)
        for rows, result in zip(user_rows, results):
            direct = best_monotone_path(score_table[:, rows].T)
            np.testing.assert_array_equal(result.levels, direct.levels)
            assert result.log_likelihood == direct.log_likelihood

    def test_parallel_matches_serial(self, score_table, user_rows):
        serial = assign_paths(score_table, user_rows)
        parallel = assign_paths(
            score_table, user_rows, ParallelConfig(users=True, workers=2)
        )
        for a, b in zip(serial, parallel):
            np.testing.assert_array_equal(a.levels, b.levels)
            assert a.log_likelihood == pytest.approx(b.log_likelihood)

    def test_pool_reuse_across_calls(self, score_table, user_rows):
        with PoolAssigner(ParallelConfig(users=True, workers=2)) as assigner:
            first = assigner.assign(score_table, user_rows)
            second = assigner.assign(score_table * 0.5, user_rows)
        assert len(first) == len(second) == len(user_rows)

    def test_single_user_runs_serial(self, score_table):
        rows = [np.array([0, 1, 2])]
        results = assign_paths(score_table, rows, ParallelConfig(users=True, workers=4))
        assert len(results) == 1

    def test_empty_user_list(self, score_table):
        assert assign_paths(score_table, []) == []

    def test_empty_sequence_in_parallel(self, score_table):
        rows = [np.array([], dtype=np.int64), np.array([1, 2, 3])]
        results = assign_paths(score_table, rows, ParallelConfig(users=True, workers=2))
        assert len(results[0].levels) == 0
        assert len(results[1].levels) == 3


class TestCellFitter:
    def test_none_when_no_axis(self):
        assert make_cell_fitter(None) is None
        assert make_cell_fitter(ParallelConfig(users=True, workers=4)) is None
        assert make_cell_fitter(ParallelConfig(skills=True, workers=1)) is None

    @pytest.mark.parametrize(
        "config",
        [
            ParallelConfig(skills=True, workers=2),
            ParallelConfig(features=True, workers=2),
            ParallelConfig(skills=True, features=True, workers=2),
        ],
    )
    def test_parallel_fit_matches_serial(self, config, tiny_catalog, tiny_feature_set):
        encoded = tiny_feature_set.encode(tiny_catalog)
        rows = np.arange(encoded.num_items)
        levels = rows % 3
        serial = SkillParameters.fit_from_assignments(encoded, rows, levels, num_levels=3)
        fitter = make_cell_fitter(config)
        assert fitter is not None
        parallel = SkillParameters.fit_from_assignments(
            encoded, rows, levels, num_levels=3, cell_fitter=fitter
        )
        np.testing.assert_allclose(
            serial.item_score_table(encoded), parallel.item_score_table(encoded)
        )


class TestEndToEndParallelTraining:
    def test_parallel_fit_equals_serial_fit(self, tiny_log, tiny_catalog, tiny_feature_set):
        """The full trainer must produce identical models on every axis mix."""
        serial = fit_skill_model(
            tiny_log, tiny_catalog, tiny_feature_set, 3, init_min_actions=5, max_iterations=10
        )
        parallel = fit_skill_model(
            tiny_log,
            tiny_catalog,
            tiny_feature_set,
            3,
            init_min_actions=5,
            max_iterations=10,
            parallel=ParallelConfig.all_axes(workers=2),
        )
        assert serial.trace.log_likelihoods == pytest.approx(
            parallel.trace.log_likelihoods
        )
        for user in tiny_log.users:
            np.testing.assert_array_equal(
                serial.skill_trajectory(user), parallel.skill_trajectory(user)
            )
