"""Tests for repro.core.engine: strategy selection, parity, table cache."""

import numpy as np
import pytest

from repro.core.dp import best_monotone_path
from repro.core.engine import _BATCH_MIN_USERS, AssignmentEngine
from repro.core.model import ScoreTableCache, SkillParameters
from repro.core.parallel import ParallelConfig
from repro.core.training import TrainerConfig, fit_skill_model
from repro.exceptions import ConfigurationError
from repro.obs.metrics import MetricsRegistry, use_registry


@pytest.fixture
def score_table():
    rng = np.random.default_rng(0)
    return rng.normal(size=(4, 50))


@pytest.fixture
def user_rows():
    rng = np.random.default_rng(1)
    return [rng.integers(0, 50, size=rng.integers(1, 40)) for _ in range(30)]


class TestStrategySelection:
    def test_rejects_unknown_strategy(self):
        with pytest.raises(ConfigurationError):
            AssignmentEngine(strategy="fastest")

    def test_trainer_config_rejects_unknown_strategy(self):
        with pytest.raises(ConfigurationError):
            TrainerConfig(num_levels=3, assignment_strategy="fastest")

    def test_forced_strategy_is_used_verbatim(self):
        for name in ("serial", "batched", "pooled"):
            with AssignmentEngine(strategy=name) as engine:
                assert engine.resolve_strategy(1) == name
                assert engine.resolve_strategy(10_000) == name

    def test_auto_small_batch_is_serial(self):
        with AssignmentEngine() as engine:
            assert engine.resolve_strategy(_BATCH_MIN_USERS - 1) == "serial"

    def test_auto_large_batch_is_batched(self):
        with AssignmentEngine() as engine:
            assert engine.resolve_strategy(_BATCH_MIN_USERS) == "batched"

    def test_auto_prefers_pool_when_enabled(self):
        with AssignmentEngine(ParallelConfig(users=True, workers=2)) as engine:
            assert engine.resolve_strategy(100) == "pooled"
            assert engine.resolve_strategy(1) == "serial"  # nothing to fan out

    def test_chosen_strategy_is_counted(self, score_table, user_rows):
        registry = MetricsRegistry()
        with use_registry(registry), AssignmentEngine(strategy="batched") as engine:
            engine.assign(score_table, user_rows)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["engine.strategy.batched"] == 1
        assert snapshot["histograms"]["engine.assign_seconds"]["count"] == 1


class TestStrategyParity:
    @pytest.mark.parametrize("strategy", ["serial", "batched", "pooled"])
    def test_matches_scalar_dp(self, strategy, score_table, user_rows):
        parallel = (
            ParallelConfig(users=True, workers=2) if strategy == "pooled" else None
        )
        with AssignmentEngine(parallel, strategy=strategy) as engine:
            results = engine.assign(score_table, user_rows)
        for rows, got in zip(user_rows, results):
            expected = best_monotone_path(score_table[:, rows].T)
            np.testing.assert_array_equal(got.levels, expected.levels)
            assert got.log_likelihood == expected.log_likelihood

    def test_pooled_without_shared_memory_matches(self, score_table, user_rows):
        config = ParallelConfig(users=True, workers=2, shared_memory=False)
        with AssignmentEngine(config, strategy="pooled") as engine:
            results = engine.assign(score_table, user_rows)
        for rows, got in zip(user_rows, results):
            expected = best_monotone_path(score_table[:, rows].T)
            np.testing.assert_array_equal(got.levels, expected.levels)
            assert got.log_likelihood == expected.log_likelihood

    def test_skip_level_configuration_flows_through(self, score_table, user_rows):
        penalties = np.array([0.0, np.log(0.6), np.log(0.4)])
        with AssignmentEngine(
            strategy="batched", max_step=2, step_log_penalties=penalties
        ) as engine:
            results = engine.assign(score_table, user_rows)
        for rows, got in zip(user_rows, results):
            expected = best_monotone_path(
                score_table[:, rows].T, max_step=2, step_log_penalties=penalties
            )
            np.testing.assert_array_equal(got.levels, expected.levels)
            assert got.log_likelihood == expected.log_likelihood


def _fit_params(encoded, levels_of, num_levels=3):
    rows = np.arange(encoded.num_items)
    return SkillParameters.fit_from_assignments(
        encoded, rows, levels_of(rows), num_levels=num_levels
    )


class TestScoreTableCache:
    def test_warm_rebuild_recomputes_zero_rows(self, tiny_catalog, tiny_feature_set):
        """Refitting identical assignments must hit the cache on every row."""
        encoded = tiny_feature_set.encode(tiny_catalog)
        params = _fit_params(encoded, lambda rows: rows % 3)
        refit = _fit_params(encoded, lambda rows: rows % 3)  # equal cells, new objects
        registry = MetricsRegistry()
        with use_registry(registry):
            cache = ScoreTableCache()
            cold = params.item_score_table(encoded, cache=cache)
            assert cache.misses == 3 * len(tiny_feature_set) and cache.hits == 0
            warm = refit.item_score_table(encoded, cache=cache)
            assert cache.misses == 3 * len(tiny_feature_set)  # zero new rows
            assert cache.hits == 3 * len(tiny_feature_set)
        np.testing.assert_array_equal(cold, warm)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["score_cache.hits"] == cache.hits
        assert snapshot["counters"]["score_cache.misses"] == cache.misses

    def test_changed_cells_are_recomputed(self, tiny_catalog, tiny_feature_set):
        encoded = tiny_feature_set.encode(tiny_catalog)
        cache = ScoreTableCache()
        _fit_params(encoded, lambda rows: rows % 3).item_score_table(
            encoded, cache=cache
        )
        misses_before = cache.misses
        changed = _fit_params(encoded, lambda rows: (rows + 1) % 3)
        table = changed.item_score_table(encoded, cache=cache)
        assert cache.misses > misses_before
        np.testing.assert_array_equal(table, changed.item_score_table(encoded))

    def test_cached_table_equals_uncached(self, tiny_catalog, tiny_feature_set):
        encoded = tiny_feature_set.encode(tiny_catalog)
        params = _fit_params(encoded, lambda rows: rows % 3)
        cached = params.item_score_table(encoded, cache=ScoreTableCache())
        np.testing.assert_array_equal(cached, params.item_score_table(encoded))

    def test_repeated_encode_is_memoized(self, tiny_catalog, tiny_feature_set):
        """Same feature set + same catalog → the very same EncodedItems."""
        assert tiny_feature_set.encode(tiny_catalog) is tiny_feature_set.encode(
            tiny_catalog
        )

    def test_different_catalog_resets_cache(self, tiny_catalog, tiny_feature_set):
        encoded = tiny_feature_set.encode(tiny_catalog)
        # Equal content, new identity — bypass the encode memoizer, which
        # would otherwise hand back the same object.
        other = tiny_feature_set._encode(tiny_catalog)
        params = _fit_params(encoded, lambda rows: rows % 3)
        cache = ScoreTableCache()
        params.item_score_table(encoded, cache=cache)
        hits_before = cache.hits
        params.item_score_table(other, cache=cache)
        assert cache.hits == hits_before  # all rows recomputed for the new catalog

    def test_engine_owns_a_cache(self, tiny_catalog, tiny_feature_set):
        encoded = tiny_feature_set.encode(tiny_catalog)
        params = _fit_params(encoded, lambda rows: rows % 3)
        with AssignmentEngine() as engine:
            engine.score_table(params, encoded)
            assert engine.cache.hits == 0
            engine.score_table(params, encoded)
            assert engine.cache.hits == 3 * len(tiny_feature_set)


class TestTrainerIntegration:
    @pytest.mark.parametrize("strategy", ["serial", "batched"])
    def test_forced_strategies_reproduce_auto_fit(
        self, strategy, tiny_log, tiny_catalog, tiny_feature_set
    ):
        auto = fit_skill_model(
            tiny_log, tiny_catalog, tiny_feature_set, 3, init_min_actions=5
        )
        forced = fit_skill_model(
            tiny_log,
            tiny_catalog,
            tiny_feature_set,
            3,
            init_min_actions=5,
            assignment_strategy=strategy,
        )
        assert forced.trace.log_likelihoods == auto.trace.log_likelihoods
        for user in tiny_log.users:
            np.testing.assert_array_equal(
                forced.skill_trajectory(user), auto.skill_trajectory(user)
            )

    def test_fit_reports_cache_hits_after_first_iteration(
        self, tiny_log, tiny_catalog, tiny_feature_set
    ):
        """Late-iteration table builds must be mostly cache hits."""
        registry = MetricsRegistry()
        with use_registry(registry):
            fit_skill_model(
                tiny_log, tiny_catalog, tiny_feature_set, 3, init_min_actions=5
            )
        counters = registry.snapshot()["counters"]
        assert counters["score_cache.misses"] > 0
        assert counters["score_cache.hits"] > 0
