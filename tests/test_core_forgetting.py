"""Tests for repro.core.forgetting (decay-aware assignment)."""

import itertools

import numpy as np
import pytest

from repro.core.forgetting import (
    ForgettingConfig,
    best_decay_path,
    fit_forgetting_model,
    forgetting_log_weight,
)
from repro.data.actions import ActionLog
from repro.exceptions import ConfigurationError, DataError


def brute_force_decay(scores, gaps, half_life, floor=1e-6):
    """Exhaustive max over all ±1-step paths with gap-weighted drops."""
    n, S = scores.shape
    down = forgetting_log_weight(gaps, half_life, floor)
    best = -np.inf
    for path in itertools.product(range(S), repeat=n):
        total = 0.0
        ok = True
        for t in range(1, n):
            step = path[t] - path[t - 1]
            if step == -1:
                total += down[t - 1]
            elif step not in (0, 1):
                ok = False
                break
        if not ok:
            continue
        total += sum(scores[t, path[t]] for t in range(n))
        best = max(best, total)
    return best


class TestForgettingWeight:
    def test_zero_gap_hits_floor(self):
        weight = forgetting_log_weight(np.array([0.0]), half_life=5.0, floor=1e-6)
        assert weight[0] == pytest.approx(np.log(1e-6))

    def test_long_gap_approaches_zero(self):
        weight = forgetting_log_weight(np.array([1e6]), half_life=5.0)
        assert weight[0] == pytest.approx(0.0, abs=1e-9)

    def test_monotone_in_gap(self):
        gaps = np.array([0.1, 1.0, 10.0, 100.0])
        weights = forgetting_log_weight(gaps, half_life=5.0)
        assert np.all(np.diff(weights) > 0)

    def test_negative_gap_rejected(self):
        with pytest.raises(ConfigurationError):
            forgetting_log_weight(np.array([-1.0]), half_life=5.0)


class TestBestDecayPath:
    def test_reduces_to_monotone_when_gaps_tiny(self):
        """With near-zero gaps, drops are ~impossible: matches the base DP."""
        from repro.core.dp import best_monotone_path

        rng = np.random.default_rng(0)
        scores = rng.normal(size=(15, 4))
        gaps = np.full(14, 1e-9)
        decay = best_decay_path(scores, gaps, half_life=10.0)
        base = best_monotone_path(scores)
        assert decay.log_likelihood == pytest.approx(base.log_likelihood, abs=1e-3)

    def test_long_gap_allows_drop(self):
        # Level 1 great early, level 0 great late; only possible via a drop.
        scores = np.array([[-10.0, 0.0], [0.0, -10.0]])
        result = best_decay_path(scores, np.array([1000.0]), half_life=5.0)
        assert result.levels.tolist() == [1, 0]

    def test_short_gap_blocks_drop(self):
        scores = np.array([[-10.0, 0.0], [0.0, -10.0]])
        result = best_decay_path(scores, np.array([1e-9]), half_life=5.0)
        # dropping scores 0 + 0 + log(floor) ≈ −13.8; the best non-drop
        # paths ([0,0] and [1,1]) tie at −10, so the drop must lose.
        assert result.levels.tolist() != [1, 0]
        assert result.log_likelihood == pytest.approx(-10.0)

    def test_matches_brute_force(self):
        rng = np.random.default_rng(3)
        for _ in range(25):
            n, S = int(rng.integers(2, 6)), int(rng.integers(1, 4))
            scores = rng.normal(size=(n, S)) * 3
            gaps = rng.exponential(5.0, size=n - 1)
            result = best_decay_path(scores, gaps, half_life=5.0)
            assert result.log_likelihood == pytest.approx(
                brute_force_decay(scores, gaps, 5.0)
            )

    def test_steps_bounded(self):
        rng = np.random.default_rng(1)
        scores = rng.normal(size=(40, 5))
        gaps = rng.exponential(3.0, size=39)
        result = best_decay_path(scores, gaps, half_life=5.0)
        steps = np.diff(result.levels)
        assert np.all((steps >= -1) & (steps <= 1))

    def test_empty(self):
        result = best_decay_path(np.empty((0, 3)), np.empty(0), half_life=5.0)
        assert len(result.levels) == 0

    def test_gap_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            best_decay_path(np.zeros((3, 2)), np.zeros(1), half_life=5.0)


class TestFitForgettingModel:
    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ForgettingConfig(num_levels=0)
        with pytest.raises(ConfigurationError):
            ForgettingConfig(num_levels=3, half_life=0.0)
        with pytest.raises(ConfigurationError):
            ForgettingConfig(num_levels=3, down_floor=0.0)

    def test_empty_log(self, tiny_catalog, tiny_feature_set):
        with pytest.raises(DataError):
            fit_forgetting_model(
                ActionLog([]), tiny_catalog, tiny_feature_set, ForgettingConfig(num_levels=2)
            )

    def test_fits_and_exposes_model_api(self, tiny_log, tiny_catalog, tiny_feature_set):
        model = fit_forgetting_model(
            tiny_log,
            tiny_catalog,
            tiny_feature_set,
            ForgettingConfig(num_levels=3, init_min_actions=5, max_iterations=15),
        )
        assert set(model.assignments) == set(tiny_log.users)
        levels = model.all_assigned_levels()
        assert levels.min() >= 1 and levels.max() <= 3
        assert np.isfinite(model.log_likelihood)

    def test_recovers_planted_decay(self):
        """On decaying data the model should beat the base trainer."""
        from repro.core.training import fit_skill_model
        from repro.synth.forgetting import ForgettingDataConfig, generate_forgetting
        from repro.synth.generator import SyntheticConfig

        ds = generate_forgetting(
            ForgettingDataConfig(
                base=SyntheticConfig(
                    num_users=80, num_items=500, seed=6, level_up_prob=0.15
                )
            )
        )
        base = fit_skill_model(
            ds.log, ds.catalog, ds.feature_set, 5, init_min_actions=30, max_iterations=15
        )
        decay = fit_forgetting_model(
            ds.log,
            ds.catalog,
            ds.feature_set,
            ForgettingConfig(num_levels=5, half_life=20.0, init_min_actions=30, max_iterations=15),
        )
        truth = ds.true_skill_array()
        r_base = np.corrcoef(truth, np.concatenate([base.skill_trajectory(s.user) for s in ds.log]))[0, 1]
        r_decay = np.corrcoef(truth, np.concatenate([decay.skill_trajectory(s.user) for s in ds.log]))[0, 1]
        assert r_decay > r_base - 0.05
