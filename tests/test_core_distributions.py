"""Tests for repro.core.distributions: fits, densities, edge cases."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats

from repro.core.distributions import Categorical, Gamma, LogNormal, Poisson, distribution_for_kind
from repro.core.features import FeatureKind
from repro.exceptions import ConfigurationError, SchemaError


class TestCategorical:
    def test_fit_matches_equation6(self):
        # counts: category 0 twice, category 1 once, category 2 never
        values = np.array([0, 0, 1])
        dist = Categorical.fit(values, num_categories=3, smoothing=0.01)
        expected = (0.01 + np.array([2, 1, 0])) / (0.03 + 3)
        np.testing.assert_allclose(dist.probs, expected)

    def test_empty_fit_is_uniform(self):
        dist = Categorical.fit(np.array([], dtype=int), num_categories=4)
        np.testing.assert_allclose(dist.probs, 0.25)

    def test_unsmoothed_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            Categorical.fit(np.array([], dtype=int), num_categories=2, smoothing=0.0)

    def test_log_prob(self):
        dist = Categorical(np.array([0.5, 0.5]))
        np.testing.assert_allclose(dist.log_prob(np.array([0, 1])), np.log(0.5))

    def test_out_of_range_code(self):
        dist = Categorical(np.array([1.0]))
        with pytest.raises(SchemaError):
            dist.log_prob(np.array([1]))
        with pytest.raises(SchemaError):
            Categorical.fit(np.array([5]), num_categories=2)

    def test_invalid_probs(self):
        with pytest.raises(ConfigurationError):
            Categorical(np.array([0.5, 0.2]))
        with pytest.raises(ConfigurationError):
            Categorical(np.array([-0.5, 1.5]))

    def test_weighted_fit(self):
        values = np.array([0, 1])
        dist = Categorical.fit(
            values, num_categories=2, smoothing=0.0, weights=np.array([3.0, 1.0])
        )
        np.testing.assert_allclose(dist.probs, [0.75, 0.25])

    def test_mean(self):
        dist = Categorical(np.array([0.0, 1.0]))
        assert dist.mean() == 1.0


class TestPoisson:
    def test_fit_is_mean(self):
        dist = Poisson.fit(np.array([2, 4, 6]))
        assert dist.rate == pytest.approx(4.0)

    def test_empty_fit_default(self):
        assert Poisson.fit(np.array([])).rate == 1.0

    def test_all_zero_sample_valid(self):
        dist = Poisson.fit(np.zeros(10))
        assert dist.rate > 0
        assert np.isfinite(dist.log_prob(np.array([0]))[0])

    def test_log_prob_matches_scipy(self):
        dist = Poisson(rate=3.2)
        k = np.array([0, 1, 5, 12])
        np.testing.assert_allclose(dist.log_prob(k), stats.poisson.logpmf(k, 3.2))

    def test_negative_value_rejected(self):
        with pytest.raises(SchemaError):
            Poisson(1.0).log_prob(np.array([-1]))

    def test_invalid_rate(self):
        with pytest.raises(ConfigurationError):
            Poisson(rate=0.0)

    def test_weighted_fit(self):
        dist = Poisson.fit(np.array([0.0, 10.0]), weights=np.array([1.0, 3.0]))
        assert dist.rate == pytest.approx(7.5)


class TestGamma:
    def test_fit_recovers_parameters(self):
        rng = np.random.default_rng(0)
        sample = rng.gamma(shape=3.0, scale=2.0, size=20000)
        dist = Gamma.fit(sample)
        assert dist.shape == pytest.approx(3.0, rel=0.05)
        assert dist.scale == pytest.approx(2.0, rel=0.05)

    def test_log_prob_matches_scipy(self):
        dist = Gamma(shape=2.5, scale=1.7)
        x = np.array([0.1, 1.0, 5.0])
        np.testing.assert_allclose(
            dist.log_prob(x), stats.gamma.logpdf(x, a=2.5, scale=1.7)
        )

    def test_constant_sample_capped(self):
        dist = Gamma.fit(np.full(10, 3.0))
        assert np.isfinite(dist.shape)
        assert dist.mean() == pytest.approx(3.0, rel=1e-3)

    def test_empty_fit_default(self):
        dist = Gamma.fit(np.array([]))
        assert dist.shape == 1.0 and dist.scale == 1.0

    def test_non_positive_rejected(self):
        with pytest.raises(SchemaError):
            Gamma.fit(np.array([1.0, 0.0]))
        with pytest.raises(SchemaError):
            Gamma(1.0, 1.0).log_prob(np.array([-1.0]))

    def test_single_observation(self):
        dist = Gamma.fit(np.array([5.0]))
        assert np.isfinite(dist.shape) and dist.scale > 0

    def test_fit_is_approximate_mle(self):
        """The fitted parameters should beat nearby perturbations in likelihood."""
        rng = np.random.default_rng(1)
        sample = rng.gamma(shape=2.0, scale=0.5, size=2000)
        dist = Gamma.fit(sample)
        best = dist.log_prob(sample).sum()
        for factor in (0.9, 1.1):
            worse = Gamma(shape=dist.shape * factor, scale=dist.scale)
            assert worse.log_prob(sample).sum() <= best + 1e-6


class TestLogNormal:
    def test_fit_recovers_parameters(self):
        rng = np.random.default_rng(0)
        sample = rng.lognormal(mean=1.0, sigma=0.5, size=20000)
        dist = LogNormal.fit(sample)
        assert dist.mu == pytest.approx(1.0, abs=0.02)
        assert dist.sigma == pytest.approx(0.5, abs=0.02)

    def test_log_prob_matches_scipy(self):
        dist = LogNormal(mu=0.3, sigma=0.8)
        x = np.array([0.1, 1.0, 4.0])
        np.testing.assert_allclose(
            dist.log_prob(x), stats.lognorm.logpdf(x, s=0.8, scale=np.exp(0.3))
        )

    def test_constant_sample_floored(self):
        dist = LogNormal.fit(np.full(5, 2.0))
        assert dist.sigma >= 1e-6
        assert np.isfinite(dist.log_prob(np.array([2.0]))[0])

    def test_non_positive_rejected(self):
        with pytest.raises(SchemaError):
            LogNormal.fit(np.array([-1.0]))

    def test_mean(self):
        dist = LogNormal(mu=0.0, sigma=1.0)
        assert dist.mean() == pytest.approx(np.exp(0.5))


class TestRegistry:
    def test_all_kinds_mapped(self):
        assert distribution_for_kind(FeatureKind.CATEGORICAL) is Categorical
        assert distribution_for_kind(FeatureKind.COUNT) is Poisson
        assert distribution_for_kind(FeatureKind.POSITIVE) is Gamma
        assert distribution_for_kind(FeatureKind.LOG_POSITIVE) is LogNormal

    def test_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            distribution_for_kind("nope")


class TestWeightValidation:
    def test_negative_weights_rejected(self):
        with pytest.raises(ConfigurationError):
            Poisson.fit(np.array([1.0]), weights=np.array([-1.0]))

    def test_mismatched_weights_rejected(self):
        with pytest.raises(ConfigurationError):
            Gamma.fit(np.array([1.0, 2.0]), weights=np.array([1.0]))


@settings(max_examples=40, deadline=None)
@given(
    values=st.lists(st.integers(0, 4), min_size=0, max_size=50),
    smoothing=st.floats(min_value=1e-4, max_value=1.0),
)
def test_categorical_fit_always_proper(values, smoothing):
    """Property: smoothed categorical fits are proper distributions."""
    dist = Categorical.fit(np.asarray(values, dtype=int), num_categories=5, smoothing=smoothing)
    assert np.all(dist.probs > 0)
    assert dist.probs.sum() == pytest.approx(1.0)


@settings(max_examples=40, deadline=None)
@given(
    values=st.lists(
        st.floats(min_value=1e-3, max_value=1e3, allow_nan=False), min_size=2, max_size=60
    )
)
def test_gamma_fit_always_valid(values):
    """Property: the gamma fit never produces an invalid density."""
    dist = Gamma.fit(np.asarray(values))
    assert np.isfinite(dist.shape) and dist.shape > 0
    assert np.isfinite(dist.scale) and dist.scale > 0
    assert np.all(np.isfinite(dist.log_prob(np.asarray(values))))


class TestColumnStats:
    """log_prob_from_stats(column_stats(v)) must be bit-identical to
    log_prob(v) — the score-table cache relies on it (see ScoreTableCache)."""

    CASES = [
        (Categorical(probs=np.array([0.2, 0.5, 0.3])), np.array([0, 2, 1, 1, 0])),
        (Poisson(rate=3.7), np.array([0.0, 1.0, 4.0, 12.0])),
        (Gamma(shape=2.5, scale=1.3), np.array([0.1, 1.0, 7.5, 42.0])),
        (LogNormal(mu=0.4, sigma=1.1), np.array([0.1, 1.0, 7.5, 42.0])),
    ]

    @pytest.mark.parametrize(
        "dist,values", CASES, ids=[type(d).__name__ for d, _ in CASES]
    )
    def test_bit_identical_to_log_prob(self, dist, values):
        stats_ = type(dist).column_stats(values)
        np.testing.assert_array_equal(
            dist.log_prob_from_stats(stats_), dist.log_prob(values)
        )

    def test_stats_shared_across_levels(self):
        """One column's stats serve every level's cell of that feature."""
        values = np.array([1.0, 2.0, 9.0])
        stats_ = Poisson.column_stats(values)
        for rate in (0.5, 2.0, 8.0):
            cell = Poisson(rate=rate)
            np.testing.assert_array_equal(
                cell.log_prob_from_stats(stats_), cell.log_prob(values)
            )

    @pytest.mark.parametrize(
        "cls,bad",
        [
            (Poisson, np.array([1.0, -1.0])),
            (Gamma, np.array([1.0, 0.0])),
            (LogNormal, np.array([1.0, -2.0])),
        ],
    )
    def test_validation_happens_in_column_stats(self, cls, bad):
        with pytest.raises(SchemaError):
            cls.column_stats(bad)
