"""Tests for the experiment registry, table renderer, and dataset presets."""

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments import all_experiments, get_experiment, run_experiment
from repro.experiments.registry import ExperimentResult, _artifact_sort_key
from repro.experiments.tables import format_cell, format_table

#: Every paper artifact that must have a registered reproduction.
PAPER_ARTIFACTS = {
    "table1", "table2", "table3", "table4", "table5", "table6", "table7",
    "table8", "table9", "table10", "table11", "table12", "table13",
    "fig3", "fig4", "fig5", "fig6", "fig7",
}


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        registered = {exp.experiment_id for exp in all_experiments()}
        missing = PAPER_ARTIFACTS - registered
        assert not missing, f"unregistered paper artifacts: {sorted(missing)}"

    def test_experiments_sorted_numerically(self):
        ids = [e.experiment_id for e in all_experiments()]
        tables = [i for i in ids if i.startswith("table")]
        assert tables == sorted(tables, key=lambda i: int(i[5:]))

    def test_unknown_experiment(self):
        with pytest.raises(ConfigurationError):
            get_experiment("table99")

    def test_invalid_scale(self):
        with pytest.raises(ConfigurationError):
            get_experiment("table1").run("galactic")

    def test_sort_key_handles_ablations(self):
        assert _artifact_sort_key("ablation_x") > _artifact_sort_key("fig7")

    def test_run_experiment_smoke(self):
        """The cheapest experiment end-to-end through the registry."""
        result = run_experiment("table1", "small")
        assert isinstance(result, ExperimentResult)
        assert result.rows
        assert result.all_checks_pass
        assert "Table I" in result.to_text()

    def test_all_experiments_have_metadata(self):
        for exp in all_experiments():
            assert exp.title
            assert exp.paper_reference


class TestTables:
    def test_alignment(self):
        text = format_table(("a", "bbb"), ((1, 2.34567), ("xx", "y")))
        lines = text.splitlines()
        assert len(lines) == 4
        # all rows equally wide
        assert len(set(len(line) for line in lines)) == 1

    def test_float_formatting(self):
        assert format_cell(2.34567) == "2.346"
        assert format_cell(7) == "7"
        assert format_cell("x") == "x"
        assert format_cell(True) == "True"
        assert format_cell(None) == "None"

    def test_title(self):
        text = format_table(("a",), ((1,),), title="T")
        assert text.splitlines()[0] == "T"

    def test_row_width_mismatch(self):
        with pytest.raises(ConfigurationError):
            format_table(("a", "b"), ((1,),))

    def test_empty_headers(self):
        with pytest.raises(ConfigurationError):
            format_table((), ())

    def test_empty_rows_ok(self):
        text = format_table(("a",), ())
        assert "a" in text


class TestDatasets:
    def test_presets_exist(self):
        from repro.experiments.datasets import dataset

        for name in ("language", "cooking", "beer", "film", "synthetic", "synthetic_dense"):
            ds = dataset(name, "small")
            assert ds.log.num_actions > 0

    def test_caching(self):
        from repro.experiments.datasets import dataset

        assert dataset("cooking", "small") is dataset("cooking", "small")

    def test_unknown_dataset(self):
        from repro.experiments.datasets import dataset

        with pytest.raises(ConfigurationError):
            dataset("chess", "small")

    def test_dense_is_retagged_and_smaller(self):
        from repro.experiments.datasets import dataset

        sparse = dataset("synthetic", "small")
        dense = dataset("synthetic_dense", "small")
        assert dense.name == "synthetic_dense"
        assert len(dense.catalog) * 5 == len(sparse.catalog)


class TestResultRendering:
    def test_checks_rendered(self):
        result = ExperimentResult(
            experiment_id="x",
            title="T",
            headers=("a",),
            rows=((1,),),
            checks={"good": True, "bad": False},
        )
        text = result.to_text()
        assert "good=PASS" in text
        assert "bad=FAIL" in text
        assert not result.all_checks_pass
