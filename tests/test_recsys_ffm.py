"""Tests for repro.recsys.ffm: prediction math, learning, edge cases."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, NotFittedError
from repro.recsys.encoding import FFMSample, RatingEncoder, RatingInstance
from repro.recsys.ffm import FFMConfig, FFMModel


def _sample(fields, indices, values, target):
    return FFMSample(
        fields=np.asarray(fields, dtype=np.int64),
        indices=np.asarray(indices, dtype=np.int64),
        values=np.asarray(values, dtype=np.float64),
        target=float(target),
    )


def _toy_dataset(num_users=20, num_items=15, n=300, seed=0):
    """Ratings from a planted bilinear model, encoded as FFM samples."""
    rng = np.random.default_rng(seed)
    user_bias = rng.normal(0, 0.5, num_users)
    item_bias = rng.normal(0, 0.5, num_items)
    u_vec = rng.normal(0, 0.5, (num_users, 3))
    i_vec = rng.normal(0, 0.5, (num_items, 3))
    samples = []
    for _ in range(n):
        u = int(rng.integers(num_users))
        i = int(rng.integers(num_items))
        rating = 3.0 + user_bias[u] + item_bias[i] + u_vec[u] @ i_vec[i]
        rating += rng.normal(0, 0.1)
        samples.append(
            _sample([0, 1], [u, num_users + i], [1.0, 1.0], np.clip(rating, 0, 5))
        )
    return samples, num_users + num_items


class TestFFMConfig:
    def test_validation(self):
        for kwargs in (
            {"num_factors": 0},
            {"epochs": 0},
            {"learning_rate": 0.0},
            {"regularization": -1.0},
            {"batch_size": 0},
        ):
            with pytest.raises(ConfigurationError):
                FFMConfig(**kwargs)


class TestFFMModel:
    def test_predict_before_fit(self):
        model = FFMModel(num_features=4, num_fields=2)
        with pytest.raises(NotFittedError):
            model.predict([_sample([0, 1], [0, 2], [1, 1], 3.0)])

    def test_fit_empty_rejected(self):
        model = FFMModel(num_features=4, num_fields=2)
        with pytest.raises(ConfigurationError):
            model.fit([])

    def test_learns_global_mean(self):
        samples = [_sample([0, 1], [0, 1], [1, 1], 4.0)] * 10
        model = FFMModel(2, 2, FFMConfig(epochs=2)).fit(samples)
        assert model.predict_one(samples[0]) == pytest.approx(4.0, abs=0.2)

    def test_reduces_rmse_vs_mean_predictor(self):
        samples, num_features = _toy_dataset()
        model = FFMModel(num_features, 2, FFMConfig(epochs=20, seed=0)).fit(samples)
        targets = np.asarray([s.target for s in samples])
        baseline = float(np.sqrt(np.mean((targets - targets.mean()) ** 2)))
        assert model.rmse(samples) < 0.6 * baseline

    def test_generalizes_to_held_out(self):
        samples, num_features = _toy_dataset(n=800)
        train, test = samples[:600], samples[600:]
        model = FFMModel(num_features, 2, FFMConfig(epochs=20, seed=1)).fit(train)
        targets = np.asarray([s.target for s in test])
        baseline = float(np.sqrt(np.mean((targets - targets.mean()) ** 2)))
        assert model.rmse(test) < baseline

    def test_clipping(self):
        samples = [_sample([0, 1], [0, 1], [1, 1], 5.0)] * 5
        model = FFMModel(2, 2, FFMConfig(epochs=1, clip_range=(0.0, 5.0))).fit(samples)
        assert 0.0 <= model.predict_one(samples[0]) <= 5.0

    def test_no_clipping_option(self):
        samples = [_sample([0, 1], [0, 1], [1, 1], 3.0)] * 5
        model = FFMModel(2, 2, FFMConfig(epochs=1, clip_range=None)).fit(samples)
        assert np.isfinite(model.predict_one(samples[0]))

    def test_deterministic_given_seed(self):
        samples, num_features = _toy_dataset(n=100)
        m1 = FFMModel(num_features, 2, FFMConfig(epochs=3, seed=7)).fit(samples)
        m2 = FFMModel(num_features, 2, FFMConfig(epochs=3, seed=7)).fit(samples)
        np.testing.assert_array_equal(m1.predict(samples), m2.predict(samples))

    def test_mixed_field_patterns_rejected(self):
        a = _sample([0, 1], [0, 1], [1, 1], 3.0)
        b = _sample([0, 1, 2], [0, 1, 2], [1, 1, 1], 3.0)
        model = FFMModel(4, 3)
        with pytest.raises(ConfigurationError):
            model.fit([a, b])

    def test_numeric_field_influences_prediction(self):
        """The difficulty-style numeric field must shift predictions."""
        rng = np.random.default_rng(0)
        samples = []
        for _ in range(400):
            u = int(rng.integers(10))
            i = int(rng.integers(10))
            d = float(rng.uniform(1, 5))
            rating = np.clip(1.0 + 0.8 * d + rng.normal(0, 0.05), 0, 5)
            samples.append(_sample([0, 1, 2], [u, 10 + i, 20], [1.0, 1.0, d], rating))
        model = FFMModel(21, 3, FFMConfig(epochs=30, seed=0)).fit(samples)
        lo = _sample([0, 1, 2], [0, 10, 20], [1.0, 1.0, 1.0], 0.0)
        hi = _sample([0, 1, 2], [0, 10, 20], [1.0, 1.0, 5.0], 0.0)
        assert model.predict_one(hi) > model.predict_one(lo) + 1.0

    def test_gradient_direction_numerically(self):
        """One batch step must reduce squared loss on that batch."""
        samples, num_features = _toy_dataset(n=32)
        model = FFMModel(num_features, 2, FFMConfig(epochs=1, learning_rate=0.05))
        from repro.recsys.ffm import _stack

        fields, indices, values, targets = _stack(samples)
        model._bias = float(targets.mean())
        before = np.mean((model._raw_scores(fields, indices, values) - targets) ** 2)
        model._batch_step(fields, indices, values, targets)
        after = np.mean((model._raw_scores(fields, indices, values) - targets) ** 2)
        assert after < before


class TestEndToEndWithEncoder:
    def test_encoder_samples_trainable(self):
        instances = [
            RatingInstance(user=f"u{k % 7}", item=f"i{k % 5}", rating=float(k % 5), skill=1 + k % 3, difficulty=1.0 + (k % 4))
            for k in range(60)
        ]
        encoder = RatingEncoder(include_skill=True, include_difficulty=True).fit(instances)
        samples = encoder.encode(instances)
        model = FFMModel(encoder.num_features, encoder.num_fields, FFMConfig(epochs=5))
        model.fit(samples)
        assert np.isfinite(model.rmse(samples))
