"""End-to-end tests: a real socket server, concurrent clients, hot reload.

These boot :class:`~repro.serve.server.ServerThread` on an ephemeral port
and talk to it over ``http.client`` — the same transport CI's smoke job
and ``tools/bench_serve.py`` use.  The two load-bearing claims:

- batched dispatch is *byte-identical* to sequential dispatch and matches
  direct library calls (batching is invisible to callers);
- a model hot-swap mid-traffic never fails a request: the old model
  answers until the new pair validates, then new answers appear.
"""

import importlib.util
import json
import http.client
import os
import threading
import time
from pathlib import Path

import pytest

from repro.core.difficulty import difficulty_array, generation_difficulty
from repro.core.serialize import save_model
from repro.core.training import fit_skill_model
from repro.data.actions import Action
from repro.data.splits import HeldOutAction
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.recsys.ranking import predict_items
from repro.recsys.similarity import build_similarity_index, similar_harder
from repro.recsys.upskill import UpskillConfig, UpskillRecommender
from repro.serve import ModelState, ServeConfig, ServerThread, SkillServer


def _request(host, port, method, path, body=None):
    conn = http.client.HTTPConnection(host, port, timeout=30)
    try:
        payload = json.dumps(body).encode("utf-8") if body is not None else None
        headers = {"Content-Type": "application/json"} if payload else {}
        conn.request(method, path, payload, headers)
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


@pytest.fixture
def served(fitted_tiny_model, tmp_path):
    """A running server (batched config) over the tiny fitted model."""
    prefix = tmp_path / "model"
    save_model(fitted_tiny_model, prefix)
    with use_registry(MetricsRegistry()) as registry:
        server = SkillServer(
            ModelState(prefix, poll_seconds=0.05),
            ServeConfig(port=0, max_batch=8, max_wait_ms=2.0),
        )
        thread = ServerThread(server)
        host, port = thread.start()
        try:
            yield host, port, prefix, registry
        finally:
            thread.stop()


class TestEndpoints:
    def test_healthz_reports_the_artifact(self, served):
        host, port, prefix, _ = served
        status, raw = _request(host, port, "GET", "/healthz")
        body = json.loads(raw)
        assert status == 200
        assert body["status"] == "ok"
        assert body["model_version"] == 1
        assert body["model"]["checksum_verified"] is True
        assert body["model"]["json_path"] == str(prefix.with_suffix(".json"))

    def test_skill_matches_direct_call(self, served, fitted_tiny_model):
        host, port, _, _ = served
        status, raw = _request(host, port, "GET", "/skill?user=u1&time=7.0")
        assert status == 200
        assert json.loads(raw)["level"] == fitted_tiny_model.skill_at("u1", 7.0)

    def test_predict_matches_direct_calls(self, served, fitted_tiny_model):
        host, port, _, _ = served
        model = fitted_tiny_model
        status, raw = _request(
            host, port, "POST", "/predict",
            {"user": "u0", "time": 4.0, "k": 3, "item": "i5"},
        )
        assert status == 200
        body = json.loads(raw)
        level = model.skill_at("u0", 4.0)
        assert body["level"] == level
        assert [entry["item"] for entry in body["top"]] == [
            item for item, _ in model.top_items(level, 3)
        ]
        held = HeldOutAction(
            action=Action(time=4.0, user="u0", item="i5"),
            position=0, sequence_length=1,
        )
        expected_rank = float(predict_items(model, [held]).ranks[0])
        assert body["rank"] == expected_rank
        assert body["reciprocal_rank"] == 1.0 / expected_rank

    def test_difficulty_matches_direct_gather(self, served, fitted_tiny_model):
        host, port, _, served_registry = served
        items = ["i0", "i7", "i11"]
        status, raw = _request(
            host, port, "POST", "/difficulty", {"items": items, "prior": "empirical"}
        )
        assert status == 200
        body = json.loads(raw)
        expected = difficulty_array(
            generation_difficulty(fitted_tiny_model, prior="empirical"), items
        )
        assert body["difficulties"] == [float(v) for v in expected]

    def test_recommend_matches_direct_recommender(self, served, fitted_tiny_model):
        host, port, _, _ = served
        status, raw = _request(
            host, port, "POST", "/recommend",
            {"user": "u1", "k": 4, "exclude": ["i0"]},
        )
        assert status == 200
        body = json.loads(raw)
        level = int(fitted_tiny_model.skill_trajectory("u1")[-1])
        assert body["mode"] == "upskill"
        assert body["level"] == level
        # ServeConfig's default window/blend is UpskillConfig's default.
        recommender = UpskillRecommender(
            fitted_tiny_model,
            generation_difficulty(fitted_tiny_model, prior="empirical"),
            UpskillConfig(exclude_seen=False),
        )
        expected = recommender.recommend_for_level(
            level, k=4, exclude=frozenset({"i0"})
        )
        assert body["recommendations"] == [
            {
                "item": rec.item,
                "score": rec.score,
                "difficulty": rec.difficulty,
                "challenge_fit": rec.challenge_fit,
                "interest": rec.interest,
            }
            for rec in expected
        ]
        assert all(entry["item"] != "i0" for entry in body["recommendations"])

    def test_recommend_similar_harder_matches_direct(self, served, fitted_tiny_model):
        host, port, _, _ = served
        difficulties = generation_difficulty(fitted_tiny_model, prior="empirical")
        anchor = min(difficulties, key=difficulties.get)  # easiest: most headroom
        status, raw = _request(
            host, port, "POST", "/recommend",
            {"mode": "similar_harder", "item": anchor, "k": 5},
        )
        assert status == 200
        body = json.loads(raw)
        assert body["mode"] == "similar_harder"
        assert body["item"] == anchor
        index = build_similarity_index(fitted_tiny_model)
        recommender = UpskillRecommender(
            fitted_tiny_model, difficulties, UpskillConfig(exclude_seen=False)
        )
        expected = similar_harder(
            index, recommender.difficulty_vector, anchor, k=5
        )
        assert body["recommendations"] == [
            {
                "item": one.item,
                "similarity": one.similarity,
                "difficulty": one.difficulty,
            }
            for one in expected
        ]

    def test_recommend_counters(self, served):
        host, port, _, registry = served
        status, _ = _request(host, port, "POST", "/recommend", {"user": "u0"})
        assert status == 200
        counters = registry.snapshot()["counters"]
        assert counters["serve.recommend.requests"] >= 1
        assert counters["serve.requests.recommend"] >= 1
        # The tiny artifact ships no index, so the first similar_harder
        # request triggers exactly one lazy in-process build.
        _request(
            host, port, "POST", "/recommend",
            {"mode": "similar_harder", "item": "i0"},
        )
        _request(
            host, port, "POST", "/recommend",
            {"mode": "similar_harder", "item": "i1"},
        )
        assert registry.snapshot()["counters"]["serve.recommend.index_builds"] == 1

    def test_recommend_error_statuses(self, served):
        host, port, _, _ = served
        cases = [
            ({"user": "ghost"}, 404),
            ({"user": "u0", "mode": "bogus"}, 400),
            ({"user": "u0", "k": 0}, 400),
            ({"user": "u0", "exclude": "i0"}, 400),
            ({"mode": "similar_harder"}, 400),
            ({"mode": "similar_harder", "item": "nope"}, 404),
            ({"mode": "upskill"}, 400),
        ]
        for body, expected in cases:
            status, _ = _request(host, port, "POST", "/recommend", body)
            assert status == expected, (body, status)

    def test_error_statuses(self, served):
        host, port, _, _ = served
        assert _request(host, port, "GET", "/skill?user=ghost&time=1")[0] == 404
        assert _request(host, port, "GET", "/skill?user=u0")[0] == 400
        assert _request(host, port, "POST", "/predict", {"time": 1.0})[0] == 400
        assert _request(
            host, port, "POST", "/predict", {"user": "u0", "time": 1.0, "item": "nope"}
        )[0] == 404
        assert _request(host, port, "POST", "/difficulty", {"items": []})[0] == 400
        assert _request(
            host, port, "POST", "/difficulty", {"items": ["i0"], "prior": "bogus"}
        )[0] == 400
        assert _request(host, port, "GET", "/nope")[0] == 404
        assert _request(host, port, "POST", "/healthz")[0] == 405

    def test_metrics_passes_the_obs_checker(self, served):
        host, port, _, _ = served
        _request(host, port, "GET", "/skill?user=u0&time=1.0")
        status, raw = _request(host, port, "GET", "/metrics")
        assert status == 200
        payload = json.loads(raw)
        checker_path = (
            Path(__file__).resolve().parent.parent / "tools" / "check_obs_output.py"
        )
        spec = importlib.util.spec_from_file_location("check_obs_output", checker_path)
        checker = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(checker)
        assert checker.check_metrics(payload) == []
        assert payload["counters"]["serve.requests.skill"] >= 1


class TestBatchedParity:
    def test_batched_bytes_equal_sequential_bytes(self, fitted_tiny_model, tmp_path):
        """The same workload through max_batch=8 and max_batch=1 servers."""
        prefix = tmp_path / "model"
        save_model(fitted_tiny_model, prefix)
        workload = []
        for r in range(24):
            if r % 3 == 2:
                workload.append(
                    ("/difficulty",
                     {"items": [f"i{(r + j) % 12}" for j in range(4)],
                      "prior": ["uniform", "empirical"][r % 2]})
                )
            else:
                workload.append(
                    ("/predict",
                     {"user": f"u{r % 3}", "time": float(r % 9), "k": 5,
                      "item": f"i{(r * 5) % 12}"})
                )
        for r in range(8):
            if r % 2:
                workload.append(
                    ("/recommend",
                     {"mode": "similar_harder", "item": f"i{r}", "k": 4,
                      "margin": 0.05 * r})
                )
            else:
                workload.append(
                    ("/recommend",
                     {"user": f"u{r % 3}", "k": 5,
                      "exclude": [f"i{(r * 7) % 12}"]})
                )

        def collect(max_batch):
            with use_registry(MetricsRegistry()) as registry:
                thread = ServerThread(
                    SkillServer(
                        ModelState(prefix),
                        ServeConfig(port=0, max_batch=max_batch, max_wait_ms=2.0),
                    )
                )
                host, port = thread.start()
                try:
                    statuses = [0] * len(workload)
                    bodies = [None] * len(workload)

                    def worker(offset):
                        for index in range(offset, len(workload), 4):
                            path, body = workload[index]
                            statuses[index], bodies[index] = _request(
                                host, port, "POST", path, body
                            )

                    threads = [
                        threading.Thread(target=worker, args=(offset,))
                        for offset in range(4)
                    ]
                    for t in threads:
                        t.start()
                    for t in threads:
                        t.join()
                finally:
                    thread.stop()
                assert statuses == [200] * len(workload)
                coalesced = registry.snapshot()["histograms"]["serve.batch_size"]
                return bodies, coalesced["max"]

        batched, batched_max = collect(8)
        sequential, sequential_max = collect(1)
        assert batched == sequential  # byte-for-byte, hence bit-for-bit
        assert sequential_max == 1


class TestHotReload:
    def test_swap_mid_traffic_without_errors(
        self, fitted_tiny_model, tiny_log, tiny_catalog, tiny_feature_set, tmp_path
    ):
        model_b = fit_skill_model(
            tiny_log,
            tiny_catalog,
            tiny_feature_set.with_id_feature(),
            num_levels=2,
            init_min_actions=5,
            max_iterations=20,
        )
        probe = {"items": ["i3"], "prior": "uniform"}
        from repro.core.difficulty import generation_difficulty

        answer_a = float(difficulty_array(
            generation_difficulty(fitted_tiny_model, prior="uniform"), ["i3"]
        )[0])
        answer_b = float(difficulty_array(
            generation_difficulty(model_b, prior="uniform"), ["i3"]
        )[0])
        assert answer_a != answer_b  # the swap must be observable

        prefix = tmp_path / "model"
        save_model(fitted_tiny_model, prefix)
        with use_registry(MetricsRegistry()) as registry:
            thread = ServerThread(
                SkillServer(
                    ModelState(prefix, poll_seconds=0.05),
                    ServeConfig(port=0, max_batch=8, max_wait_ms=1.0),
                )
            )
            host, port = thread.start()
            failures = []
            answers = []
            stop = threading.Event()

            def traffic():
                while not stop.is_set():
                    status, raw = _request(host, port, "POST", "/difficulty", probe)
                    if status != 200:
                        failures.append((status, raw))
                    else:
                        answers.append(json.loads(raw)["difficulties"][0])
                    status, _raw = _request(
                        host, port, "POST", "/predict",
                        {"user": "u0", "time": 3.0, "k": 2},
                    )
                    if status != 200:
                        failures.append((status, _raw))

            workers = [threading.Thread(target=traffic) for _ in range(3)]
            try:
                for worker in workers:
                    worker.start()
                time.sleep(0.2)  # traffic against model A first
                save_model(model_b, prefix)
                for suffix in (".json", ".npz"):
                    path = prefix.with_suffix(suffix)
                    stat = path.stat()
                    os.utime(
                        path, ns=(stat.st_atime_ns, stat.st_mtime_ns + 1_000_000)
                    )
                deadline = time.monotonic() + 5.0
                swapped = False
                while time.monotonic() < deadline and not swapped:
                    status, raw = _request(host, port, "GET", "/healthz")
                    swapped = status == 200 and json.loads(raw)["model_version"] == 2
                    time.sleep(0.05)
                time.sleep(0.2)  # traffic against model B after the swap
            finally:
                stop.set()
                for worker in workers:
                    worker.join()
                thread.stop()

            assert failures == []  # zero errors across the swap
            assert swapped, "server never picked up the rewritten artifacts"
            assert answer_a in answers and answer_b in answers
            # old and new never interleave: A answers strictly precede B's
            assert answers.index(answer_b) > answers.index(answer_a)
            assert set(answers) <= {answer_a, answer_b}
            assert registry.snapshot()["counters"]["serve.reloads"] >= 1
