"""Tests for the sharded map-reduce trainer (repro.core.shard).

The contract under test is exactness: a store-backed sharded fit —
serial, pooled, or recovering from worker deaths — must be bit-identical
to the in-RAM :class:`~repro.core.training.Trainer` on the same data
(LL trace, final assignments, fitted cells), for any shard geometry.
"""

import numpy as np
import pytest

from repro.core.model import _cell_cache_key
from repro.core.parallel import ParallelConfig, WorkerPoolWarning
from repro.core.shard import SHARD_STAGES, ShardedFitResult, ShardedTrainer
from repro.core.training import Trainer, TrainerConfig, fit_skill_model
from repro.data.actions import Action, ActionLog
from repro.data.store import ActionStore, StoreWriter
from repro.exceptions import ConfigurationError, DataError
from repro.testing.faults import kill_shard_worker


def _progression_log(num_users=24, seed=11) -> ActionLog:
    """Progression-flavoured sequences over the 12-item tiny catalog."""
    rng = np.random.default_rng(seed)
    actions = []
    for u in range(num_users):
        length = int(rng.integers(6, 18))
        for t in range(length):
            tier = min(2, (3 * t) // length)
            item = f"i{int(rng.integers(4 * tier, 4 * tier + 4))}"
            actions.append(Action(time=float(t), user=f"u{u:03d}", item=item))
    return ActionLog.from_actions(actions)


def _fit_pair(log, store, catalog, feature_set, **config_kwargs):
    """Fit the same data in RAM and out of core with one configuration."""
    defaults = dict(
        num_levels=3, max_iterations=8, init_min_actions=8, smoothing=0.5
    )
    defaults.update(config_kwargs)
    ram = Trainer(TrainerConfig(**defaults)).fit(log, catalog, feature_set)
    sharded = ShardedTrainer(TrainerConfig(**defaults)).fit(
        store, catalog, feature_set
    )
    return ram, sharded


def _assert_identical(ram, sharded):
    assert ram.trace.log_likelihoods == sharded.trace.log_likelihoods
    assert ram.trace.converged == sharded.trace.converged
    assert set(ram.assignments) == set(sharded.assignments)
    for user in ram.assignments:
        assert np.array_equal(ram.assignments[user], sharded.assignments[user])
    for row_a, row_b in zip(ram.parameters.cells, sharded.parameters.cells):
        for cell_a, cell_b in zip(row_a, row_b):
            assert _cell_cache_key(cell_a) == _cell_cache_key(cell_b)


@pytest.fixture
def dataset(tiny_catalog, tiny_feature_set, tmp_path):
    log = _progression_log()
    feature_set = tiny_feature_set.with_id_feature()

    def make_store(users_per_shard):
        path = tmp_path / f"shards-{users_per_shard}.store"
        return ActionStore.from_log(log, path, users_per_shard=users_per_shard)

    return log, tiny_catalog, feature_set, make_store


class TestShardedParity:
    @pytest.mark.parametrize("users_per_shard", [1, 4, 1000])
    def test_bit_identical_for_any_geometry(self, dataset, users_per_shard):
        """One user per shard, several, or everything in a single shard."""
        log, catalog, feature_set, make_store = dataset
        store = make_store(users_per_shard)
        ram, sharded = _fit_pair(log, store, catalog, feature_set)
        _assert_identical(ram, sharded)

    def test_cold_mstep_parity(self, dataset):
        log, catalog, feature_set, make_store = dataset
        store = make_store(5)
        ram, sharded = _fit_pair(
            log, store, catalog, feature_set, incremental_mstep=False
        )
        _assert_identical(ram, sharded)

    def test_pooled_parity(self, dataset):
        """workers > 1 routes shards through the process pool; results
        must not depend on which process ran which shard."""
        log, catalog, feature_set, make_store = dataset
        store = make_store(4)
        parallel = ParallelConfig(users=True, workers=2, restart_backoff=0.0)
        ram, pooled = _fit_pair(
            log, store, catalog, feature_set, parallel=parallel
        )
        _assert_identical(ram, pooled)

    def test_fit_skill_model_dispatches_stores(self, dataset):
        log, catalog, feature_set, make_store = dataset
        store = make_store(6)
        via_log = fit_skill_model(
            log, catalog, feature_set, 3, max_iterations=6, init_min_actions=8
        )
        via_store = fit_skill_model(
            store, catalog, feature_set, 3, max_iterations=6, init_min_actions=8
        )
        _assert_identical(via_log, via_store)

    def test_checkpointing_rejected_for_stores(self, dataset, tmp_path):
        from repro.core.checkpoint import CheckpointConfig

        _, catalog, feature_set, make_store = dataset
        store = make_store(6)
        checkpoint = CheckpointConfig(path=tmp_path / "m.ckpt.json", every=1)
        with pytest.raises(ConfigurationError, match="checkpoint"):
            fit_skill_model(
                store, catalog, feature_set, 3, checkpoint=checkpoint
            )


class TestShardedResultShape:
    def test_materialize_false_skips_assignments(self, dataset):
        log, catalog, feature_set, make_store = dataset
        store = make_store(4)
        config = TrainerConfig(
            num_levels=3, max_iterations=6, init_min_actions=8
        )
        full = ShardedTrainer(config).fit(store, catalog, feature_set)
        slim = ShardedTrainer(config).fit(
            store, catalog, feature_set, materialize=False
        )
        assert isinstance(slim, ShardedFitResult)
        assert slim.trace.log_likelihoods == full.trace.log_likelihoods
        assert slim.num_users == store.num_users
        assert slim.num_actions == store.num_actions
        assert slim.num_shards == store.num_shards

    def test_telemetry_covers_shard_stages(self, dataset):
        _, catalog, feature_set, make_store = dataset
        store = make_store(4)
        config = TrainerConfig(
            num_levels=3, max_iterations=4, init_min_actions=8
        )
        model = ShardedTrainer(config).fit(store, catalog, feature_set)
        stage_names = {
            name
            for record in model.telemetry.iterations
            for name in record.stage_seconds
        }
        assert stage_names == set(SHARD_STAGES)

    def test_empty_store_rejected(self, tiny_catalog, tiny_feature_set, tmp_path):
        store = StoreWriter(tmp_path / "empty.store").finalize()
        config = TrainerConfig(num_levels=3)
        with pytest.raises(DataError, match="empty action store"):
            ShardedTrainer(config).fit(
                store, tiny_catalog, tiny_feature_set.with_id_feature()
            )


class TestShardedFaults:
    def test_worker_death_triggers_rebuild_with_parity(self, dataset, tmp_path):
        """One shard worker dying mid-fit must cost a pool rebuild, not
        correctness: the recovered fit stays bit-identical."""
        log, catalog, feature_set, make_store = dataset
        store = make_store(4)
        parallel = ParallelConfig(users=True, workers=2, restart_backoff=0.0)
        ram, _ = _fit_pair(log, store, catalog, feature_set)
        config = TrainerConfig(
            num_levels=3,
            max_iterations=8,
            init_min_actions=8,
            smoothing=0.5,
            parallel=parallel,
        )
        trainer = ShardedTrainer(config)
        with kill_shard_worker(tmp_path, deaths=1) as token_dir:
            with pytest.warns(WorkerPoolWarning, match="rebuilding pool"):
                recovered = trainer.fit(store, catalog, feature_set)
            claimed = [p for p in token_dir.iterdir() if p.suffix == ".claimed"]
            assert len(claimed) == 1
        _assert_identical(ram, recovered)

    def test_repeated_deaths_degrade_to_serial_with_parity(
        self, dataset, tmp_path
    ):
        """Exhausting the rebuild budget falls back to serial shard
        execution for the rest of the run — still bit-identical."""
        log, catalog, feature_set, make_store = dataset
        store = make_store(4)
        parallel = ParallelConfig(
            users=True, workers=2, max_pool_restarts=1, restart_backoff=0.0
        )
        ram, _ = _fit_pair(log, store, catalog, feature_set)
        config = TrainerConfig(
            num_levels=3,
            max_iterations=8,
            init_min_actions=8,
            smoothing=0.5,
            parallel=parallel,
        )
        trainer = ShardedTrainer(config)
        with kill_shard_worker(tmp_path, deaths=20):
            with pytest.warns(WorkerPoolWarning, match="degrading to serial"):
                degraded = trainer.fit(store, catalog, feature_set)
        _assert_identical(ram, degraded)
