"""Tests for repro.data.filtering."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.actions import Action, ActionLog
from repro.data.filtering import filter_log
from repro.exceptions import ConfigurationError


def _log(pairs):
    """Build a log from (user, item) pairs with per-user increasing times."""
    clock = {}
    actions = []
    for user, item in pairs:
        t = clock.get(user, 0)
        clock[user] = t + 1
        actions.append(Action(time=float(t), user=user, item=item))
    return ActionLog.from_actions(actions)


class TestFilterLog:
    def test_no_op_when_thresholds_met(self):
        log = _log([("a", "x"), ("a", "y"), ("b", "x"), ("b", "y")])
        filtered, stats = filter_log(
            log, min_unique_items_per_user=2, min_unique_users_per_item=2
        )
        assert filtered.num_actions == 4
        assert stats.actions_after == 4

    def test_short_users_dropped(self):
        log = _log([("a", "x"), ("a", "y"), ("b", "x")])
        filtered, _ = filter_log(
            log, min_unique_items_per_user=2, min_unique_users_per_item=1
        )
        assert filtered.users == ("a",)

    def test_rare_items_dropped(self):
        log = _log([("a", "x"), ("a", "y"), ("b", "x"), ("b", "z")])
        filtered, _ = filter_log(
            log, min_unique_items_per_user=1, min_unique_users_per_item=2
        )
        assert filtered.selected_items == frozenset({"x"})

    def test_cascade_reaches_fixpoint(self):
        # Dropping item z (1 user) pushes user b under the user threshold,
        # which pushes item y (now 1 user) out too.
        log = _log(
            [
                ("a", "x"), ("a", "y"),
                ("b", "y"), ("b", "z"),
                ("c", "x"), ("c", "y"),
                ("d", "x"), ("d", "w"),
            ]
        )
        filtered, stats = filter_log(
            log, min_unique_items_per_user=2, min_unique_users_per_item=2
        )
        # Fixpoint: every surviving user/item meets both thresholds.
        for seq in filtered:
            assert len(seq.unique_items) >= 2
        for count in filtered.item_user_counts().values():
            assert count >= 2
        assert stats.rounds >= 1

    def test_single_pass_mode(self):
        log = _log([("a", "x"), ("a", "y"), ("b", "y"), ("b", "z")])
        single, stats = filter_log(
            log,
            min_unique_items_per_user=2,
            min_unique_users_per_item=2,
            iterate=False,
        )
        assert stats.rounds == 1

    def test_everything_filtered(self):
        log = _log([("a", "x")])
        filtered, stats = filter_log(
            log, min_unique_items_per_user=5, min_unique_users_per_item=5
        )
        assert filtered.num_users == 0
        assert stats.users_after == 0

    def test_bad_thresholds(self):
        log = _log([("a", "x")])
        with pytest.raises(ConfigurationError):
            filter_log(log, min_unique_items_per_user=0)

    def test_stats_shape(self):
        log = _log([("a", "x"), ("a", "y"), ("b", "x")])
        _, stats = filter_log(
            log, min_unique_items_per_user=2, min_unique_users_per_item=1
        )
        assert stats.users_before == 2
        assert stats.users_after == 1
        assert stats.actions_before == 3


@settings(max_examples=50, deadline=None)
@given(
    pairs=st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 8)), min_size=1, max_size=60
    ),
    user_min=st.integers(1, 3),
    item_min=st.integers(1, 3),
)
def test_filter_fixpoint_property(pairs, user_min, item_min):
    """Property: after iterate=True filtering, all thresholds hold."""
    log = _log(pairs)
    filtered, _ = filter_log(
        log,
        min_unique_items_per_user=user_min,
        min_unique_users_per_item=item_min,
    )
    for seq in filtered:
        assert len(seq.unique_items) >= user_min
    for count in filtered.item_user_counts().values():
        assert count >= item_min
