"""Tests for repro.core.selection (skill-count selection)."""

import numpy as np
import pytest

from repro.core.selection import held_out_log_likelihood, select_skill_count
from repro.core.training import fit_skill_model
from repro.data.splits import holdout_fraction
from repro.exceptions import ConfigurationError


class TestSelectSkillCount:
    def test_returns_argmax(self, tiny_log, tiny_catalog, tiny_feature_set):
        result = select_skill_count(
            tiny_log,
            tiny_catalog,
            tiny_feature_set,
            (1, 2, 3),
            test_fraction=0.2,
            seed=1,
            init_min_actions=5,
            max_iterations=10,
        )
        lls = dict(result.as_series())
        assert result.best in (1, 2, 3)
        assert lls[result.best] == max(lls.values())

    def test_series_alignment(self, tiny_log, tiny_catalog, tiny_feature_set):
        result = select_skill_count(
            tiny_log,
            tiny_catalog,
            tiny_feature_set,
            (2, 4),
            seed=0,
            init_min_actions=5,
            max_iterations=5,
        )
        assert result.candidates == (2, 4)
        assert len(result.log_likelihoods) == 2

    def test_empty_candidates(self, tiny_log, tiny_catalog, tiny_feature_set):
        with pytest.raises(ConfigurationError):
            select_skill_count(tiny_log, tiny_catalog, tiny_feature_set, ())

    def test_invalid_candidate(self, tiny_log, tiny_catalog, tiny_feature_set):
        with pytest.raises(ConfigurationError):
            select_skill_count(tiny_log, tiny_catalog, tiny_feature_set, (0, 2))

    def test_deterministic_given_seed(self, tiny_log, tiny_catalog, tiny_feature_set):
        kwargs = dict(test_fraction=0.2, seed=9, init_min_actions=5, max_iterations=10)
        r1 = select_skill_count(tiny_log, tiny_catalog, tiny_feature_set, (2, 3), **kwargs)
        r2 = select_skill_count(tiny_log, tiny_catalog, tiny_feature_set, (2, 3), **kwargs)
        assert r1.log_likelihoods == r2.log_likelihoods


class TestHeldOutLogLikelihood:
    def test_negative_and_finite(self, tiny_log, tiny_catalog, tiny_feature_set):
        train, held = holdout_fraction(tiny_log, 0.2, np.random.default_rng(3))
        model = fit_skill_model(
            train, tiny_catalog, tiny_feature_set, 2, init_min_actions=5, max_iterations=10
        )
        ll = held_out_log_likelihood(model, held)
        assert np.isfinite(ll)
        assert ll < 0  # log-probabilities of discrete-ish features

    def test_empty_held_out(self, fitted_tiny_model):
        assert held_out_log_likelihood(fitted_tiny_model, []) == 0.0

    def test_matches_manual_computation(self, tiny_log, tiny_catalog, tiny_feature_set):
        train, held = holdout_fraction(tiny_log, 0.2, np.random.default_rng(3))
        model = fit_skill_model(
            train, tiny_catalog, tiny_feature_set, 2, init_min_actions=5, max_iterations=10
        )
        table = model.item_score_table()
        manual = sum(
            table[
                model.skill_at(h.action.user, h.action.time) - 1,
                model.encoded.index_of[h.action.item],
            ]
            for h in held
        )
        assert held_out_log_likelihood(model, held) == pytest.approx(manual)
