"""Tests for repro.recsys.encoding (FFM feature encoding)."""

import pytest

from repro.exceptions import ConfigurationError
from repro.recsys.encoding import RatingEncoder, RatingInstance


def _instances():
    return [
        RatingInstance(user="a", item="x", rating=3.0, skill=1, difficulty=1.5),
        RatingInstance(user="b", item="y", rating=4.0, skill=2, difficulty=2.5),
        RatingInstance(user="a", item="y", rating=2.0, skill=1, difficulty=2.5),
    ]


class TestRatingEncoder:
    def test_baseline_two_fields(self):
        encoder = RatingEncoder().fit(_instances())
        samples = encoder.encode(_instances())
        assert encoder.num_fields == 2
        assert all(len(s.indices) == 2 for s in samples)
        # user and item indices never collide (disjoint index ranges)
        assert samples[0].indices[0] != samples[0].indices[1]

    def test_skill_field(self):
        encoder = RatingEncoder(include_skill=True).fit(_instances())
        samples = encoder.encode(_instances())
        assert encoder.num_fields == 3
        assert all(len(s.indices) == 3 for s in samples)
        assert all(s.values[2] == 1.0 for s in samples)  # one-hot

    def test_difficulty_field_carries_value(self):
        encoder = RatingEncoder(include_difficulty=True).fit(_instances())
        samples = encoder.encode(_instances())
        assert samples[0].values[-1] == pytest.approx(1.5)
        assert samples[1].values[-1] == pytest.approx(2.5)

    def test_full_variant(self):
        encoder = RatingEncoder(include_skill=True, include_difficulty=True).fit(
            _instances()
        )
        assert encoder.num_fields == 4
        assert len(encoder.encode(_instances())[0].indices) == 4

    def test_unseen_user_maps_to_oov(self):
        encoder = RatingEncoder().fit(_instances())
        known = encoder.encode(_instances())[0]
        unseen = encoder.encode(
            [RatingInstance(user="stranger", item="x", rating=1.0)]
        )[0]
        assert unseen.indices[0] != known.indices[0]
        # OOV index is within the feature space
        assert unseen.indices[0] < encoder.num_features

    def test_missing_skill_rejected(self):
        encoder = RatingEncoder(include_skill=True)
        with pytest.raises(ConfigurationError):
            encoder.fit([RatingInstance(user="a", item="x", rating=1.0)])

    def test_missing_difficulty_rejected(self):
        encoder = RatingEncoder(include_difficulty=True).fit(_instances())
        with pytest.raises(ConfigurationError):
            encoder.encode([RatingInstance(user="a", item="x", rating=1.0, skill=1)])

    def test_double_fit_rejected(self):
        encoder = RatingEncoder().fit(_instances())
        with pytest.raises(ConfigurationError):
            encoder.fit(_instances())

    def test_use_before_fit_rejected(self):
        with pytest.raises(ConfigurationError):
            RatingEncoder().encode(_instances())

    def test_index_space_is_compact(self):
        encoder = RatingEncoder(include_skill=True, include_difficulty=True).fit(
            _instances()
        )
        samples = encoder.encode(_instances())
        top = max(int(s.indices.max()) for s in samples)
        assert top < encoder.num_features
