"""Tests for repro.data.validation (input pre-flight)."""

import pytest

from repro.data.actions import Action, ActionLog
from repro.data.items import Item, ItemCatalog
from repro.data.validation import ERROR, INFO, WARNING, validate_inputs


class TestValidateInputs:
    def test_clean_inputs_ok(self, tiny_log, tiny_catalog, tiny_feature_set):
        report = validate_inputs(tiny_log, tiny_catalog, tiny_feature_set)
        assert report.ok
        assert report.by_severity(INFO)  # scale line always present

    def test_empty_log_is_error(self, tiny_catalog):
        report = validate_inputs(ActionLog([]), tiny_catalog)
        assert not report.ok
        assert report.issues[0].code == "empty-log"

    def test_empty_catalog_is_error(self, tiny_log):
        report = validate_inputs(tiny_log, ItemCatalog([]))
        assert not report.ok
        assert report.issues[0].code == "empty-catalog"

    def test_unknown_items_detected(self, tiny_catalog):
        log = ActionLog.from_actions(
            [Action(time=0.0, user="u", item="ghost"), Action(time=1.0, user="u", item="i0")]
        )
        report = validate_inputs(log, tiny_catalog)
        assert not report.ok
        codes = {issue.code for issue in report.issues}
        assert "unknown-items" in codes

    def test_schema_violation_detected(self, tiny_feature_set):
        catalog = ItemCatalog(
            [Item(id="i0", features={"color": "red", "steps": -1, "weight": 1.0})]
        )
        log = ActionLog.from_actions([Action(time=0.0, user="u", item="i0")])
        report = validate_inputs(log, catalog, tiny_feature_set)
        assert not report.ok
        assert any(issue.code == "schema-violation" for issue in report.issues)

    def test_short_sequences_warned(self, tiny_catalog):
        log = ActionLog.from_actions([Action(time=0.0, user="solo", item="i0")])
        report = validate_inputs(log, tiny_catalog, min_actions_hint=5)
        assert report.ok  # warning, not error
        assert any(issue.code == "short-sequences" for issue in report.issues)

    def test_never_selected_items_warned(self, tiny_log, tiny_catalog):
        report = validate_inputs(tiny_log, tiny_catalog)
        warning_codes = {issue.code for issue in report.by_severity(WARNING)}
        # tiny_log only uses a subset of the 12-item catalog sometimes;
        # either way the check must not crash, and if all are covered there
        # is simply no warning.
        assert "never-selected-items" in warning_codes or report.ok

    def test_ratings_expectations(self, tiny_log, tiny_catalog):
        report = validate_inputs(tiny_log, tiny_catalog, expect_ratings=True)
        assert not report.ok
        assert any(issue.code == "no-ratings" for issue in report.issues)

    def test_partial_ratings_warned(self, tiny_catalog):
        log = ActionLog.from_actions(
            [
                Action(time=0.0, user="u", item="i0", rating=4.0),
                Action(time=1.0, user="u", item="i1"),
            ]
        )
        report = validate_inputs(log, tiny_catalog, expect_ratings=True)
        assert report.ok
        assert any(issue.code == "partial-ratings" for issue in report.issues)

    def test_to_text(self, tiny_log, tiny_catalog):
        text = validate_inputs(tiny_log, tiny_catalog).to_text()
        assert "INFO" in text

    def test_simulated_domains_validate_clean(self):
        from repro.synth import CookingConfig, generate_cooking

        ds = generate_cooking(CookingConfig(num_users=40, num_items=200))
        report = validate_inputs(
            ds.log, ds.catalog, ds.feature_set, expect_ratings=True
        )
        assert report.ok, report.to_text()
