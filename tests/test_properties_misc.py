"""Cross-cutting property tests on library invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.soft_em import forward_backward
from repro.data.actions import Action, ActionLog
from repro.data.io import load_log, save_log
from repro.data.stats import popularity_gini


# ---------------------------------------------------------------- io


@settings(max_examples=40, deadline=None)
@given(
    records=st.lists(
        st.tuples(
            st.integers(0, 5),  # user
            st.integers(0, 10),  # item
            st.floats(min_value=0, max_value=1e6, allow_nan=False),  # time
            st.one_of(st.none(), st.floats(min_value=0, max_value=5, allow_nan=False)),
        ),
        min_size=1,
        max_size=40,
    )
)
def test_log_round_trip_property(tmp_path_factory, records):
    """Property: save → load preserves every action (grouped per user)."""
    log = ActionLog.from_actions(
        Action(time=t, user=f"u{u}", item=f"i{i}", rating=r) for u, i, t, r in records
    )
    path = tmp_path_factory.mktemp("io") / "log.jsonl"
    save_log(log, path)
    loaded = load_log(path)
    assert loaded.num_actions == log.num_actions
    for seq in log:
        reloaded = loaded.sequence(seq.user)
        assert reloaded.items == seq.items
        assert [a.rating for a in reloaded] == [a.rating for a in seq]


# ----------------------------------------------------------- soft EM


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(1, 12),
    s=st.integers(1, 5),
    q=st.floats(min_value=0.01, max_value=0.99),
    data=st.data(),
)
def test_forward_backward_invariants(n, s, q, data):
    """Properties: responsibilities normalize; LL bounded by best/worst path."""
    flat = data.draw(
        st.lists(
            st.floats(min_value=-20, max_value=2, allow_nan=False),
            min_size=n * s,
            max_size=n * s,
        )
    )
    emissions = np.asarray(flat).reshape(n, s)
    gamma, ll = forward_backward(emissions, q)
    np.testing.assert_allclose(gamma.sum(axis=1), 1.0, rtol=1e-9)
    assert np.all(gamma >= -1e-12)
    # The total log-likelihood is a log-sum over paths; it can exceed any
    # single path's weighted score but never the unconstrained per-action
    # maxima, and never fall below the per-action minima plus the worst
    # possible transition weights.
    upper = emissions.max(axis=1).sum()  # transition/init weights are <= 0
    assert ll <= upper + 1e-9


# ------------------------------------------------------------- gini


@settings(max_examples=60, deadline=None)
@given(
    counts=st.lists(
        st.floats(min_value=0, max_value=1e6, allow_nan=False), min_size=1, max_size=200
    )
)
def test_gini_bounds_property(counts):
    """Property: Gini of non-negative counts lies in [0, 1)."""
    value = popularity_gini(np.asarray(counts))
    assert -1e-9 <= value < 1.0


# -------------------------------------------------- markov normalization


@settings(max_examples=30, deadline=None)
@given(
    transitions=st.lists(
        st.tuples(st.integers(0, 4), st.integers(0, 7)), min_size=2, max_size=60
    )
)
def test_markov_rows_always_normalized(transitions):
    """Property: every conditional next-item distribution sums to one."""
    from repro.data.items import Item, ItemCatalog
    from repro.recsys.markov import MarkovItemModel

    catalog = ItemCatalog([Item(id=f"i{k}", features={"x": 0}) for k in range(8)])
    clock: dict = {}
    actions = []
    for user, item in transitions:
        t = clock.get(user, 0)
        clock[user] = t + 1
        actions.append(Action(time=float(t), user=f"u{user}", item=f"i{item}"))
    model = MarkovItemModel(catalog).fit(ActionLog.from_actions(actions))
    for k in range(8):
        probs = model.next_item_probabilities(f"i{k}")
        assert probs.sum() == pytest.approx(1.0)
        assert np.all(probs > 0)
    assert model.next_item_probabilities(None).sum() == pytest.approx(1.0)
