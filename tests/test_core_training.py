"""Tests for repro.core.training: initialization, alternation, convergence."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.training import Trainer, TrainerConfig, fit_skill_model, uniform_segment_levels
from repro.data.actions import Action, ActionLog
from repro.exceptions import ConfigurationError, DataError
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.obs.telemetry import TRAINER_STAGES, IterationRecord


class TestUniformSegmentLevels:
    def test_even_split(self):
        levels = uniform_segment_levels(9, 3)
        assert levels.tolist() == [0, 0, 0, 1, 1, 1, 2, 2, 2]

    def test_uneven_split_front_loads(self):
        levels = uniform_segment_levels(7, 3)
        assert levels.tolist() == [0, 0, 0, 1, 1, 2, 2]

    def test_shorter_than_levels(self):
        levels = uniform_segment_levels(2, 5)
        assert levels.tolist() == [0, 1]

    def test_zero_actions(self):
        assert uniform_segment_levels(0, 3).tolist() == []

    def test_invalid_args(self):
        with pytest.raises(ConfigurationError):
            uniform_segment_levels(5, 0)
        with pytest.raises(ConfigurationError):
            uniform_segment_levels(-1, 3)

    @settings(max_examples=60, deadline=None)
    @given(n=st.integers(0, 200), s=st.integers(1, 10))
    def test_properties(self, n, s):
        levels = uniform_segment_levels(n, s)
        assert len(levels) == n
        if n:
            assert np.all(np.diff(levels) >= 0)  # monotone
            assert levels.min() >= 0 and levels.max() < s
            # group sizes differ by at most one
            sizes = np.bincount(levels, minlength=s)
            assert sizes.max() - sizes.min() <= 1


class TestTrainerConfig:
    def test_validation(self):
        for kwargs in (
            {"num_levels": 0},
            {"num_levels": 3, "smoothing": -1},
            {"num_levels": 3, "init_min_actions": 0},
            {"num_levels": 3, "max_iterations": 0},
            {"num_levels": 3, "tol": -1e-3},
        ):
            with pytest.raises(ConfigurationError):
                TrainerConfig(**kwargs)


class TestTrainer:
    def test_empty_log_rejected(self, tiny_catalog, tiny_feature_set):
        trainer = Trainer(TrainerConfig(num_levels=2))
        with pytest.raises(DataError):
            trainer.fit(ActionLog([]), tiny_catalog, tiny_feature_set)

    def test_log_likelihood_non_decreasing(self, tiny_log, tiny_catalog, tiny_feature_set):
        model = fit_skill_model(
            tiny_log, tiny_catalog, tiny_feature_set, 3, init_min_actions=5, max_iterations=30
        )
        lls = np.asarray(model.trace.log_likelihoods)
        # coordinate ascent: allow hair-width numerical dips only
        assert np.all(np.diff(lls) >= -1e-6 * np.abs(lls[:-1]))

    def test_converges_and_assignments_cover_all_users(
        self, tiny_log, tiny_catalog, tiny_feature_set
    ):
        model = fit_skill_model(
            tiny_log, tiny_catalog, tiny_feature_set, 3, init_min_actions=5, max_iterations=50
        )
        assert model.trace.converged
        assert set(model.assignments) == set(tiny_log.users)

    def test_single_level_degenerates_gracefully(
        self, tiny_log, tiny_catalog, tiny_feature_set
    ):
        model = fit_skill_model(
            tiny_log, tiny_catalog, tiny_feature_set, 1, init_min_actions=5, max_iterations=5
        )
        assert np.all(model.all_assigned_levels() == 1)

    def test_unknown_item_in_log(self, tiny_catalog, tiny_feature_set):
        log = ActionLog.from_actions([Action(time=0.0, user="u", item="ghost")])
        with pytest.raises(Exception):  # SchemaError via rows_for
            fit_skill_model(log, tiny_catalog, tiny_feature_set, 2)

    def test_init_fallback_when_no_long_user(self, tiny_log, tiny_catalog, tiny_feature_set):
        """init_min_actions higher than any sequence length must still train."""
        model = fit_skill_model(
            tiny_log, tiny_catalog, tiny_feature_set, 2, init_min_actions=10_000, max_iterations=5
        )
        assert model.trace.num_iterations >= 1

    def test_deterministic(self, tiny_log, tiny_catalog, tiny_feature_set):
        m1 = fit_skill_model(
            tiny_log, tiny_catalog, tiny_feature_set, 3, init_min_actions=5, max_iterations=20
        )
        m2 = fit_skill_model(
            tiny_log, tiny_catalog, tiny_feature_set, 3, init_min_actions=5, max_iterations=20
        )
        assert m1.trace.log_likelihoods == m2.trace.log_likelihoods
        for user in tiny_log.users:
            np.testing.assert_array_equal(
                m1.skill_trajectory(user), m2.skill_trajectory(user)
            )

    def test_max_iterations_respected(self, tiny_log, tiny_catalog, tiny_feature_set):
        model = fit_skill_model(
            tiny_log, tiny_catalog, tiny_feature_set, 3, init_min_actions=5, max_iterations=2
        )
        assert model.trace.num_iterations <= 2

    def test_recovers_planted_progression(self):
        """On data with a strong planted signal the model should track it."""
        from repro.synth import SyntheticConfig, generate_synthetic

        ds = generate_synthetic(SyntheticConfig(num_users=80, num_items=400, seed=5))
        model = fit_skill_model(
            ds.log, ds.catalog, ds.feature_set, 5, init_min_actions=30, max_iterations=30
        )
        truth = ds.true_skill_array()
        estimate = model.all_assigned_levels()
        correlation = np.corrcoef(truth, estimate)[0, 1]
        assert correlation > 0.5

    def test_smoothing_zero_allowed_when_data_covers(self, tiny_log, tiny_catalog, tiny_feature_set):
        """λ=0 works as long as every level sees data for every category."""
        model = fit_skill_model(
            tiny_log,
            tiny_catalog,
            tiny_feature_set.subset(["steps", "weight"]),  # no categorical
            2,
            smoothing=0.0,
            init_min_actions=5,
            max_iterations=5,
        )
        assert np.isfinite(model.log_likelihood)


class TestIncrementalMStep:
    def test_disabled_matches_enabled_exactly(
        self, tiny_log, tiny_catalog, tiny_feature_set
    ):
        """The incremental M-step is an exact optimization: disabling it
        must reproduce the same trace, assignments, and parameters."""
        from repro.core.model import _cell_cache_key

        kwargs = dict(init_min_actions=5, max_iterations=20)
        fast = fit_skill_model(tiny_log, tiny_catalog, tiny_feature_set, 3, **kwargs)
        slow = fit_skill_model(
            tiny_log, tiny_catalog, tiny_feature_set, 3, incremental_mstep=False, **kwargs
        )
        assert fast.trace.log_likelihoods == slow.trace.log_likelihoods
        assert fast.trace.converged == slow.trace.converged
        for user in tiny_log.users:
            np.testing.assert_array_equal(
                fast.skill_trajectory(user), slow.skill_trajectory(user)
            )
        for fast_row, slow_row in zip(fast.parameters.cells, slow.parameters.cells):
            for fast_cell, slow_cell in zip(fast_row, slow_row):
                assert _cell_cache_key(fast_cell) == _cell_cache_key(slow_cell)

    def test_cells_refit_gauge_tracks_churn(self):
        """The gauge starts at the full grid (cold build), shrinks to a
        partial refit as assignments settle, and reaches zero before the
        convergence check fires."""
        from repro.synth import SyntheticConfig, generate_synthetic

        ds = generate_synthetic(SyntheticConfig(num_users=80, num_items=400, seed=5))
        registry = MetricsRegistry()
        observed: list[float] = []
        with use_registry(registry):
            model = fit_skill_model(
                ds.log, ds.catalog, ds.feature_set, 5,
                init_min_actions=30, max_iterations=30,
                on_iteration=lambda record: observed.append(
                    registry.gauge("train.cells_refit").value
                ),
            )
        assert model.trace.converged
        num_cells = 5 * len(ds.feature_set)
        assert observed[0] == num_cells  # first update is a cold full refit
        assert observed[-1] == 0.0  # nothing moved by the end
        # Some mid-training iteration refit a strict, non-empty subset.
        assert any(0 < value < num_cells for value in observed)


class _FakeClock:
    """Advances a fixed step on every read: deterministic positive timings."""

    def __init__(self, step: float = 0.001) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


class TestTelemetry:
    def test_telemetry_matches_trace(self, tiny_log, tiny_catalog, tiny_feature_set):
        model = fit_skill_model(
            tiny_log, tiny_catalog, tiny_feature_set, 3, init_min_actions=5, max_iterations=30
        )
        telemetry = model.telemetry
        assert telemetry is not None
        assert len(telemetry.log_likelihoods) == model.trace.num_iterations
        assert telemetry.log_likelihoods == model.trace.log_likelihoods
        assert telemetry.converged == model.trace.converged
        assert len(telemetry.iterations) == model.trace.num_iterations
        # One record per iteration, numbered and valued consistently.
        for k, record in enumerate(telemetry.iterations, start=1):
            assert record.iteration == k
            assert record.log_likelihood == model.trace.log_likelihoods[k - 1]
        assert telemetry.iterations[0].improvement is None
        assert set(telemetry.pool_events) == {"rebuilds", "degraded", "chunk_timeouts"}
        assert all(v == 0 for v in telemetry.pool_events.values())

    def test_telemetry_lls_monotone_under_strict(
        self, tiny_log, tiny_catalog, tiny_feature_set
    ):
        model = fit_skill_model(
            tiny_log,
            tiny_catalog,
            tiny_feature_set,
            3,
            init_min_actions=5,
            max_iterations=30,
            strict=True,
        )
        lls = np.asarray(model.telemetry.log_likelihoods)
        assert np.all(np.diff(lls) >= -1e-6 * np.abs(lls[:-1]))

    def test_on_iteration_callback(self, tiny_log, tiny_catalog, tiny_feature_set):
        seen: list[IterationRecord] = []
        model = fit_skill_model(
            tiny_log,
            tiny_catalog,
            tiny_feature_set,
            3,
            init_min_actions=5,
            max_iterations=30,
            on_iteration=seen.append,
        )
        assert len(seen) == model.trace.num_iterations
        assert seen[-1].log_likelihood == model.log_likelihood
        assert all(isinstance(record, IterationRecord) for record in seen)
        # The histogram in each record covers every action exactly once.
        assert sum(seen[-1].level_histogram) == tiny_log.num_actions

    def test_stage_seconds_deterministic_with_fake_clock(
        self, tiny_log, tiny_catalog, tiny_feature_set
    ):
        registry = MetricsRegistry(clock=_FakeClock())
        with use_registry(registry):
            model = fit_skill_model(
                tiny_log, tiny_catalog, tiny_feature_set, 3, init_min_actions=5, max_iterations=10
            )
        telemetry = model.telemetry
        # Every trainer stage is reported, and the timed ones are positive
        # (the fake clock advances on every read — no time.sleep involved).
        assert set(telemetry.stage_seconds) == set(TRAINER_STAGES)
        for stage in ("table_build", "assign", "iteration"):
            assert telemetry.stage_seconds[stage] > 0
        assert telemetry.stage_seconds["checkpoint"] == 0.0  # checkpointing off
        assert telemetry.total_seconds > 0
        # The same wall-time landed in the registry histograms.
        snapshot = registry.snapshot()
        for stage in TRAINER_STAGES:
            hist = snapshot["histograms"][f"train.{stage}_seconds"]
            assert hist["count"] == model.trace.num_iterations
        assert snapshot["counters"]["train.iterations"] == model.trace.num_iterations
        assert snapshot["gauges"]["train.log_likelihood"] == model.log_likelihood

    def test_telemetry_records_checkpoints(
        self, tiny_log, tiny_catalog, tiny_feature_set, tmp_path
    ):
        from repro.core.checkpoint import CheckpointConfig

        path = tmp_path / "ck.json"
        model = fit_skill_model(
            tiny_log,
            tiny_catalog,
            tiny_feature_set,
            3,
            checkpoint=CheckpointConfig(path=path, every=1),
            init_min_actions=5,
            max_iterations=30,
        )
        events = model.telemetry.checkpoints
        assert events, "checkpointing every iteration must record events"
        for event in events:
            assert event.path == str(path)
            assert event.num_bytes > 0
            assert event.seconds >= 0
        assert model.telemetry.stage_seconds["checkpoint"] >= 0
