"""End-to-end trace propagation: one id from the HTTP request to the swap.

The observability claim worth a test: a single trace id minted for a
``POST /ingest`` request shows up at *every* hop of the streaming loop —

- the ``X-Trace-Id`` response header (and the response body),
- the WAL record journaled for the event,
- the ``foldin.cycle`` span of the fold that applies the event,
- the published artifact's fold-in metadata,

with the request's own spans (``serve.request``, ``serve.batch.queue``,
``serve.batch.flush``, ``serve.serialize``) all carrying the same id.
Head sampling must not break the id chain: at ``sample=0.0`` every hop
still sees the trace id — only the span *detail* disappears.
"""

from __future__ import annotations

import importlib.util
import json
import http.client
import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.serialize import artifact_metadata, save_model
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.obs.trace import Tracer, load_trace_file, use_tracer
from repro.serve import ModelState, ServeConfig, ServerThread, SkillServer
from repro.serve.foldin import FoldinConfig, FoldinWorker
from repro.serve.ingest import WriteAheadLog

_CHECKER_PATH = Path(__file__).resolve().parents[1] / "tools" / "check_obs_output.py"


@pytest.fixture(scope="module")
def checker():
    spec = importlib.util.spec_from_file_location("check_obs_output", _CHECKER_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _request(host, port, method, path, body=None):
    """Like the other serve tests' helper, but also returns the headers."""
    conn = http.client.HTTPConnection(host, port, timeout=30)
    try:
        payload = json.dumps(body).encode("utf-8") if body is not None else None
        headers = {"Content-Type": "application/json"} if payload else {}
        conn.request(method, path, payload, headers)
        response = conn.getresponse()
        return response.status, response.read(), dict(response.getheaders())
    finally:
        conn.close()


@pytest.fixture
def traced_stack(fitted_tiny_model, tiny_log, tmp_path, request):
    """A server + WAL + fold-in worker under a fully-sampling traced tracer.

    Parametrize indirectly with a sample rate to get the same stack at a
    different head-sampling setting.
    """
    sample = getattr(request, "param", 1.0)
    prefix = tmp_path / "model"
    save_model(fitted_tiny_model, prefix)
    trace_path = tmp_path / "spans.jsonl"
    tracer = Tracer(enabled=True, sample=sample, out=trace_path)
    wal = WriteAheadLog(tmp_path / "wal")
    worker = FoldinWorker(
        wal, prefix, tiny_log, config=FoldinConfig(interval_seconds=60.0)
    )
    worker.bootstrap()
    with use_registry(MetricsRegistry()) as registry, use_tracer(tracer):
        server = SkillServer(
            ModelState(prefix, poll_seconds=0.02),
            ServeConfig(port=0, max_batch=8, max_wait_ms=2.0),
            wal=wal,
            foldin=worker,
        )
        thread = ServerThread(server)
        host, port = thread.start()
        try:
            yield {
                "host": host, "port": port, "prefix": prefix,
                "wal": wal, "worker": worker, "tracer": tracer,
                "trace_path": trace_path, "registry": registry,
            }
        finally:
            thread.stop()
            worker.stop()
            wal.close()
            tracer.close()


class TestTraceEveryHop:
    def test_one_id_from_ingest_to_swap(self, traced_stack, checker):
        stack = traced_stack
        host, port = stack["host"], stack["port"]
        events = [
            {"user": "u0", "item": f"i{index}", "time": 100.0 + index}
            for index in range(3)
        ]
        status, raw, headers = _request(
            host, port, "POST", "/ingest", {"events": events}
        )
        assert status == 200
        body = json.loads(raw)
        trace_id = headers.get("X-Trace-Id")

        # Hop 1 — the response: header and body agree on the id.
        assert isinstance(trace_id, str) and len(trace_id) == 16
        assert body["trace"] == trace_id

        # Hop 2 — the WAL: every journaled event carries the id.
        journaled = list(stack["wal"].read())
        assert len(journaled) == 3
        assert all(record.event["_trace"] == trace_id for record in journaled)

        # Hop 3 — the fold-in cycle span links back to the request.
        assert stack["worker"].run_once() == 3
        tracer = stack["tracer"]
        tracer.flush()
        spans = tracer.export()
        cycle = next(span for span in spans if span["name"] == "foldin.cycle")
        assert trace_id in cycle["attrs"]["traces"]

        # Hop 4 — the published artifact remembers which requests it folded.
        folded = artifact_metadata(stack["prefix"])["extra"]["foldin"]
        assert trace_id in folded["traces"]

        # The request's own spans all share the id, across the batcher
        # hand-off (serve.batch.* run on the flusher task, not the
        # request's context).
        in_trace = {
            span["name"] for span in spans if span["trace"] == trace_id
        }
        assert {
            "serve.request", "serve.batch.queue",
            "serve.batch.flush", "serve.serialize",
        } <= in_trace
        root = next(
            span for span in spans
            if span["trace"] == trace_id and span["name"] == "serve.request"
        )
        assert root["parent"] is None
        assert root["attrs"]["path"] == "/ingest"
        assert root["attrs"]["status"] == 200

        # The sink file passes the CI checker, spans required.
        with stack["trace_path"].open(encoding="utf-8") as handle:
            problems, names = checker.check_trace_lines(handle)
        assert problems == []
        assert {"serve.request", "foldin.cycle", "foldin.extend",
                "foldin.publish"} <= names

    def test_predict_roundtrip_is_traced(self, traced_stack):
        stack = traced_stack
        status, _raw, headers = _request(
            stack["host"], stack["port"], "POST", "/predict",
            {"user": "u0", "time": 3.0, "k": 2},
        )
        assert status == 200
        trace_id = headers["X-Trace-Id"]
        tracer = stack["tracer"]
        tracer.flush()
        names = {
            span["name"] for span in tracer.export()
            if span["trace"] == trace_id
        }
        assert {"serve.request", "serve.batch.queue", "serve.batch.flush",
                "serve.serialize"} <= names

    def test_request_exemplars_point_at_traces(self, traced_stack, checker):
        stack = traced_stack
        host, port = stack["host"], stack["port"]
        _request(host, port, "POST", "/predict", {"user": "u0", "time": 3.0})
        status, raw, _headers = _request(host, port, "GET", "/metrics")
        assert status == 200
        payload = json.loads(raw)
        assert checker.check_metrics(payload) == []
        rows = payload["histograms"]["serve.request_seconds"]["exemplars"]
        assert rows and all(len(row["trace"]) == 16 for row in rows)
        # The resource gauges ride along in the same snapshot.
        assert payload["gauges"]["proc.peak_rss_bytes"] > 0
        assert payload["counters"]["proc.gc_collections"] >= 0


class TestUnsampledRequests:
    @pytest.mark.parametrize("traced_stack", [0.0], indirect=True)
    def test_id_chain_survives_without_span_detail(self, traced_stack):
        """sample=0.0: every hop still sees the trace id; no spans exist."""
        stack = traced_stack
        host, port = stack["host"], stack["port"]
        events = [{"user": "u1", "item": "i4", "time": 200.0}]
        status, raw, headers = _request(
            host, port, "POST", "/ingest", {"events": events}
        )
        assert status == 200
        trace_id = headers.get("X-Trace-Id")
        assert isinstance(trace_id, str) and len(trace_id) == 16
        assert json.loads(raw)["trace"] == trace_id

        # Journaled with the id despite zero sampling...
        (record,) = list(stack["wal"].read())
        assert record.event["_trace"] == trace_id

        # ...and the fold still links back to it: cycle spans are driven
        # by tracer.enabled (rare, worth their cost), not by sampling.
        assert stack["worker"].run_once() == 1
        folded = artifact_metadata(stack["prefix"])["extra"]["foldin"]
        assert trace_id in folded["traces"]

        tracer = stack["tracer"]
        tracer.flush()
        request_spans = [
            span for span in tracer.export()
            if span["name"].startswith("serve.")
        ]
        assert request_spans == []  # no per-request detail at sample=0.0

    @pytest.mark.parametrize("traced_stack", [0.0], indirect=True)
    def test_unsampled_responses_stay_byte_identical(self, traced_stack):
        # Sampling decides observability detail, never response content.
        stack = traced_stack
        body = {"user": "u0", "time": 3.0, "k": 2}
        _status, first, _ = _request(
            stack["host"], stack["port"], "POST", "/predict", body
        )
        _status, second, _ = _request(
            stack["host"], stack["port"], "POST", "/predict", body
        )
        assert first == second


class TestGracefulSigterm:
    @pytest.mark.skipif(
        not hasattr(signal, "SIGTERM") or sys.platform == "win32",
        reason="POSIX signal delivery",
    )
    def test_sigterm_flushes_the_span_sink(self, fitted_tiny_model, tmp_path):
        """`kill $PID` on the serve CLI must exit 0 with spans on disk.

        Supervisors and CI scripts stop the server with SIGTERM, and a
        `&`-backgrounded process starts with SIGINT ignored — so SIGTERM
        is the *only* clean-stop path scripts actually have.  The CLI
        must treat it like Ctrl-C: drain, flush the sink, exit 0.
        """
        prefix = tmp_path / "model"
        save_model(fitted_tiny_model, prefix)
        trace_path = tmp_path / "spans.jsonl"
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        repo_root = Path(__file__).resolve().parents[1]
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(repo_root / "src")]
            + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve", str(prefix),
                "--port", str(port),
                "--trace-out", str(trace_path), "--trace-sample", "1.0",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                try:
                    status, _body, _headers = _request(
                        "127.0.0.1", port, "GET", "/healthz"
                    )
                    if status == 200:
                        break
                except OSError:
                    time.sleep(0.1)
            else:
                pytest.fail("server never came up")
            status, _body, headers = _request(
                "127.0.0.1", port, "POST", "/predict",
                {"user": "u0", "time": 3.0, "k": 2},
            )
            assert status == 200
            trace_id = headers["X-Trace-Id"]

            proc.send_signal(signal.SIGTERM)
            output, _ = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, output
        assert "shutting down (SIGTERM)" in output
        assert f"wrote trace spans to {trace_path}" in output
        spans = load_trace_file(trace_path)
        assert trace_id in {
            span["trace"] for span in spans if span["name"] == "serve.request"
        }


class TestTraceVerb:
    def test_cli_summarizes_the_sink_file(self, traced_stack, capsys):
        stack = traced_stack
        _request(
            stack["host"], stack["port"], "POST", "/predict",
            {"user": "u0", "time": 3.0, "k": 2},
        )
        stack["tracer"].flush()
        assert len(load_trace_file(stack["trace_path"])) > 0
        from repro.cli import main as cli_main

        assert cli_main(["trace", str(stack["trace_path"]), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["schema"] == "repro-trace-summary/1"
        assert "serve.request" in summary["stages"]
        assert summary["traces"]["roots"] >= 1
        assert summary["critical_path"]
