"""Fault-injection tests: worker death, torn writes, checkpoint/resume.

Uses the deterministic harness in :mod:`repro.testing.faults` to inject
crashes at exact points — a pool worker killed mid-assignment, a save
interrupted between its two file commits, training interrupted right
after a checkpoint — and proves recovery is bit-for-bit equivalent to the
undisturbed run.
"""

import dataclasses
import os

import numpy as np
import pytest
from concurrent.futures.process import BrokenProcessPool

from repro.core import checkpoint as checkpointing
from repro.core import parallel as parallel_mod
from repro.core import serialize
from repro.core.checkpoint import CheckpointConfig, read_checkpoint
from repro.core.dp import PathResult
from repro.core.engine import AssignmentEngine
from repro.core.parallel import ParallelConfig, PoolAssigner, WorkerPoolWarning
from repro.core.serialize import load_model, save_model
from repro.core.training import (
    Trainer,
    TrainerConfig,
    fit_skill_model,
    resume_fit,
    uniform_segment_levels,
)
from repro.data.actions import Action, ActionLog
from repro.data.items import Item, ItemCatalog
from repro.core.features import FeatureKind, FeatureSet, FeatureSpec
from repro.exceptions import (
    CheckpointError,
    ConfigurationError,
    ConvergenceError,
    DataError,
    WorkerPoolError,
)
from repro.testing import faults


def _medium_dataset():
    """Big enough that training runs a few iterations before converging."""
    rng = np.random.default_rng(7)
    num_items = 30
    catalog = ItemCatalog(
        [
            Item(
                id=f"i{k}",
                features={"c": ["a", "b", "c", "d"][k % 4], "n": k % 6, "v": 0.5 + 0.25 * k},
            )
            for k in range(num_items)
        ]
    )
    features = FeatureSet(
        [
            FeatureSpec("c", FeatureKind.CATEGORICAL),
            FeatureSpec("n", FeatureKind.COUNT),
            FeatureSpec("v", FeatureKind.POSITIVE),
        ]
    )
    actions = []
    for u in range(8):
        for t in range(24):
            tier = min(4, (5 * t) // 24)
            item = min(num_items - 1, 6 * tier + int(rng.integers(0, 8)))
            actions.append(Action(time=float(t), user=f"u{u}", item=f"i{item}"))
    return ActionLog.from_actions(actions), catalog, features


FIT_KWARGS = dict(init_min_actions=5, max_iterations=30)


@pytest.fixture
def score_table():
    rng = np.random.default_rng(0)
    return rng.normal(size=(4, 50))


@pytest.fixture
def user_rows():
    rng = np.random.default_rng(1)
    return [rng.integers(0, 50, size=rng.integers(1, 40)) for _ in range(13)]


class TestPoolFailureRecovery:
    def test_worker_death_recovers_with_identical_results(self, tmp_path):
        """Acceptance: kill a pool worker mid-assignment; training completes
        with assignments identical to a serial run."""
        log, catalog, features = _medium_dataset()
        serial = fit_skill_model(log, catalog, features, 5, **FIT_KWARGS)
        config = ParallelConfig(users=True, workers=2, restart_backoff=0.0)
        with faults.kill_worker_once(tmp_path) as claimed:
            with pytest.warns(WorkerPoolWarning, match="rebuilding pool"):
                recovered = fit_skill_model(
                    log, catalog, features, 5, parallel=config, **FIT_KWARGS
                )
            assert claimed.exists(), "no worker actually died"
        assert serial.trace.log_likelihoods == pytest.approx(
            recovered.trace.log_likelihoods
        )
        for user in log.users:
            np.testing.assert_array_equal(
                serial.skill_trajectory(user), recovered.skill_trajectory(user)
            )

    def test_worker_death_at_assigner_level(self, tmp_path, score_table, user_rows):
        serial = PoolAssigner().assign(score_table, user_rows)
        config = ParallelConfig(users=True, workers=2, restart_backoff=0.0)
        with faults.kill_worker_once(tmp_path) as claimed:
            with PoolAssigner(config) as assigner:
                with pytest.warns(WorkerPoolWarning):
                    recovered = assigner.assign(score_table, user_rows)
            assert claimed.exists()
        for a, b in zip(serial, recovered):
            np.testing.assert_array_equal(a.levels, b.levels)
            assert a.log_likelihood == pytest.approx(b.log_likelihood)

    def test_exhausted_retries_degrade_to_serial(
        self, monkeypatch, score_table, user_rows
    ):
        config = ParallelConfig(
            users=True, workers=2, max_pool_restarts=1, restart_backoff=0.0
        )
        expected = PoolAssigner().assign(score_table, user_rows)

        def always_broken(self, tasks):
            raise BrokenProcessPool("injected: pool is gone")

        monkeypatch.setattr(PoolAssigner, "_run_chunks", always_broken)
        with PoolAssigner(config) as assigner:
            with pytest.warns(WorkerPoolWarning, match="degrading to serial"):
                results = assigner.assign(score_table, user_rows)
            assert assigner._serial_fallback
            # later calls stay serial without further recovery churn
            import warnings as _warnings

            with _warnings.catch_warnings(record=True) as later:
                _warnings.simplefilter("always")
                again = assigner.assign(score_table, user_rows)
        assert not [w for w in later if issubclass(w.category, WorkerPoolWarning)]
        for a, b, c in zip(expected, results, again):
            np.testing.assert_array_equal(a.levels, b.levels)
            np.testing.assert_array_equal(a.levels, c.levels)

    def test_exhausted_retries_raise_when_fallback_disabled(
        self, monkeypatch, score_table, user_rows
    ):
        config = ParallelConfig(
            users=True,
            workers=2,
            max_pool_restarts=0,
            restart_backoff=0.0,
            fallback_serial=False,
        )

        def always_broken(self, tasks):
            raise BrokenProcessPool("injected: pool is gone")

        monkeypatch.setattr(PoolAssigner, "_run_chunks", always_broken)
        with PoolAssigner(config) as assigner:
            with pytest.raises(WorkerPoolError, match="serial fallback is disabled"):
                assigner.assign(score_table, user_rows)

    def test_chunk_timeout_triggers_recovery(self, score_table, user_rows):
        config = ParallelConfig(
            users=True,
            workers=2,
            max_pool_restarts=0,
            restart_backoff=0.0,
            chunk_timeout=0.05,
        )
        expected = PoolAssigner().assign(score_table, user_rows)
        with faults.slow_workers(1.0):
            with PoolAssigner(config) as assigner:
                with pytest.warns(WorkerPoolWarning, match="degrading to serial"):
                    results = assigner.assign(score_table, user_rows)
        for a, b in zip(expected, results):
            np.testing.assert_array_equal(a.levels, b.levels)

    def test_pool_sized_from_config_not_first_call(self, score_table):
        """Regression: the pool used to be frozen at min(workers, first
        call's user count), starving later, larger calls."""
        rng = np.random.default_rng(3)
        small = [rng.integers(0, 50, size=10) for _ in range(2)]
        with PoolAssigner(ParallelConfig(users=True, workers=4)) as assigner:
            assigner.assign(score_table, small)
            assert assigner._pool is not None
            assert assigner._pool._max_workers == 4

    def test_invalid_recovery_config(self):
        with pytest.raises(ConfigurationError):
            ParallelConfig(max_pool_restarts=-1)
        with pytest.raises(ConfigurationError):
            ParallelConfig(restart_backoff=-0.5)
        with pytest.raises(ConfigurationError):
            ParallelConfig(chunk_timeout=0.0)

    def test_chunk_timeout_is_a_batch_deadline(self, score_table, user_rows):
        """The timeout budgets the whole batch, not each chunk.

        Two workers, four chunks of ~0.4 s each finish in two waves at
        ~0.4 s and ~0.8 s; a 0.6 s budget admits every chunk under the old
        per-future accounting but must expire mid-batch under the shared
        deadline.
        """
        config = ParallelConfig(
            users=True,
            workers=2,
            max_pool_restarts=0,
            restart_backoff=0.0,
            chunk_timeout=0.6,
        )
        expected = PoolAssigner().assign(score_table, user_rows)
        with faults.slow_workers(0.4):
            with PoolAssigner(config) as assigner:
                with pytest.warns(WorkerPoolWarning, match="degrading to serial"):
                    results = assigner.assign(score_table, user_rows)
        assert assigner.event_counts["chunk_timeouts"] >= 1
        for a, b in zip(expected, results):
            np.testing.assert_array_equal(a.levels, b.levels)


def _our_segments():
    """Shared-memory segments created by this process and still alive."""
    prefix = f"{parallel_mod.SHM_PREFIX}{os.getpid()}_"
    return [name for name in os.listdir("/dev/shm") if name.startswith(prefix)]


@pytest.mark.skipif(not os.path.isdir("/dev/shm"), reason="needs /dev/shm")
class TestSharedMemoryLifecycle:
    """The per-iteration score-table segment must never outlive its call."""

    def test_publish_and_release(self, score_table):
        assigner = PoolAssigner(ParallelConfig(users=True, workers=2))
        ref = assigner._publish_table(score_table)
        assert ref is not None and ref.name in _our_segments()
        assert ref.shape == (score_table.shape[1], score_table.shape[0])
        assigner._release_table()
        assert ref.name not in _our_segments()
        assigner._release_table()  # idempotent
        assigner.close()

    def test_released_after_normal_assign(self, score_table, user_rows):
        with PoolAssigner(ParallelConfig(users=True, workers=2)) as assigner:
            assigner.assign(score_table, user_rows)
            assert not _our_segments()
            assigner.assign(score_table * 0.5, user_rows)
            assert not _our_segments()
        assert not _our_segments()

    def test_released_after_worker_death_rebuild(
        self, tmp_path, score_table, user_rows
    ):
        config = ParallelConfig(users=True, workers=2, restart_backoff=0.0)
        with faults.kill_worker_once(tmp_path) as claimed:
            with PoolAssigner(config) as assigner:
                with pytest.warns(WorkerPoolWarning):
                    assigner.assign(score_table, user_rows)
            assert claimed.exists()
        assert not _our_segments()

    def test_released_after_timeout_degrade(self, score_table, user_rows):
        config = ParallelConfig(
            users=True,
            workers=2,
            max_pool_restarts=0,
            restart_backoff=0.0,
            chunk_timeout=0.05,
        )
        with faults.slow_workers(1.0):
            with PoolAssigner(config) as assigner:
                with pytest.warns(WorkerPoolWarning, match="degrading to serial"):
                    assigner.assign(score_table, user_rows)
        assert not _our_segments()

    def test_released_when_pool_error_raises(
        self, monkeypatch, score_table, user_rows
    ):
        config = ParallelConfig(
            users=True,
            workers=2,
            max_pool_restarts=0,
            restart_backoff=0.0,
            fallback_serial=False,
        )

        def always_broken(self, tasks):
            raise BrokenProcessPool("injected: pool is gone")

        monkeypatch.setattr(PoolAssigner, "_run_chunks", always_broken)
        with PoolAssigner(config) as assigner:
            with pytest.raises(WorkerPoolError):
                assigner.assign(score_table, user_rows)
            assert not _our_segments()

    def test_end_to_end_pooled_fit_leaves_no_segments(self):
        log, catalog, features = _medium_dataset()
        config = ParallelConfig(users=True, workers=2)
        fit_skill_model(log, catalog, features, 5, parallel=config, **FIT_KWARGS)
        assert not _our_segments()


class TestCheckpointResume:
    def test_interrupt_and_resume_matches_uninterrupted(self, tmp_path, monkeypatch):
        """Acceptance: interrupt at iteration k; resume reaches the same
        final log-likelihood (1e-9) and identical assignments."""
        log, catalog, features = _medium_dataset()
        baseline = fit_skill_model(log, catalog, features, 5, **FIT_KWARGS)
        assert baseline.trace.num_iterations >= 3  # the interrupt must be mid-run

        ckpt = tmp_path / "train.ckpt.json"
        monkeypatch.setattr(
            checkpointing,
            "write_checkpoint",
            faults.fail_after_call(checkpointing.write_checkpoint, calls=1),
        )
        with pytest.raises(faults.SimulatedCrash):
            fit_skill_model(
                log,
                catalog,
                features,
                5,
                checkpoint=CheckpointConfig(path=ckpt, every=1),
                **FIT_KWARGS,
            )
        monkeypatch.undo()

        state = read_checkpoint(ckpt)
        assert state.iteration == 1
        resumed = resume_fit(ckpt, log, catalog, features)
        assert resumed.log_likelihood == pytest.approx(
            baseline.log_likelihood, abs=1e-9
        )
        assert resumed.trace.log_likelihoods == pytest.approx(
            baseline.trace.log_likelihoods, abs=1e-9
        )
        assert resumed.trace.converged == baseline.trace.converged
        assert resumed.trace.num_iterations == baseline.trace.num_iterations
        for user in log.users:
            np.testing.assert_array_equal(
                baseline.skill_trajectory(user), resumed.skill_trajectory(user)
            )

    def test_resume_keeps_checkpointing_to_same_path(self, tmp_path, monkeypatch):
        log, catalog, features = _medium_dataset()
        ckpt = tmp_path / "c.ckpt.json"
        monkeypatch.setattr(
            checkpointing,
            "write_checkpoint",
            faults.fail_after_call(checkpointing.write_checkpoint, calls=1),
        )
        with pytest.raises(faults.SimulatedCrash):
            fit_skill_model(
                log,
                catalog,
                features,
                5,
                checkpoint=CheckpointConfig(path=ckpt, every=1),
                **FIT_KWARGS,
            )
        monkeypatch.undo()
        assert read_checkpoint(ckpt).iteration == 1
        resumed = resume_fit(ckpt, log, catalog, features)
        # the resumed run advanced the checkpoint on the same file (the
        # converging iteration itself breaks before writing — parameters
        # do not change on it)
        final = read_checkpoint(ckpt)
        assert final.iteration > 1
        assert final.log_likelihoods == pytest.approx(
            resumed.trace.log_likelihoods[: final.iteration]
        )

    def test_resume_at_max_iterations_materializes_assignments(self, tmp_path):
        log, catalog, features = _medium_dataset()
        ckpt = tmp_path / "m.ckpt.json"
        cfg = TrainerConfig(num_levels=5, init_min_actions=5, max_iterations=2)
        fitted = Trainer(cfg).fit(
            log, catalog, features, checkpoint=CheckpointConfig(path=ckpt, every=2)
        )
        assert read_checkpoint(ckpt).iteration == 2  # checkpoint is at the cap
        resumed = resume_fit(ckpt, log, catalog, features)
        assert resumed.trace.log_likelihoods == pytest.approx(
            fitted.trace.log_likelihoods
        )
        for user in log.users:
            assert len(resumed.skill_trajectory(user)) == len(
                fitted.skill_trajectory(user)
            )

    def test_resume_rejects_mismatched_data(self, tmp_path):
        log, catalog, features = _medium_dataset()
        ckpt = tmp_path / "c.ckpt.json"
        fit_skill_model(
            log,
            catalog,
            features,
            5,
            checkpoint=CheckpointConfig(path=ckpt, every=1),
            init_min_actions=5,
            max_iterations=2,
        )
        smaller = ActionLog.from_actions(
            [a for seq in log for a in seq if a.user != "u0"]
        )
        with pytest.raises(CheckpointError, match="does not match the training data"):
            resume_fit(ckpt, smaller, catalog, features)

    def test_missing_checkpoint(self, tmp_path):
        log, catalog, features = _medium_dataset()
        with pytest.raises(CheckpointError, match="no checkpoint file"):
            resume_fit(tmp_path / "nope.ckpt.json", log, catalog, features)

    def test_truncated_checkpoint(self, tmp_path):
        log, catalog, features = _medium_dataset()
        ckpt = tmp_path / "c.ckpt.json"
        fit_skill_model(
            log,
            catalog,
            features,
            5,
            checkpoint=CheckpointConfig(path=ckpt, every=1),
            init_min_actions=5,
            max_iterations=2,
        )
        data = ckpt.read_bytes()
        ckpt.write_bytes(data[: len(data) // 2])
        with pytest.raises(CheckpointError, match=str(ckpt)):
            read_checkpoint(ckpt)

    def test_edited_checkpoint_fails_checksum(self, tmp_path):
        import json

        log, catalog, features = _medium_dataset()
        ckpt = tmp_path / "c.ckpt.json"
        fit_skill_model(
            log,
            catalog,
            features,
            5,
            checkpoint=CheckpointConfig(path=ckpt, every=1),
            init_min_actions=5,
            max_iterations=2,
        )
        document = json.loads(ckpt.read_text())
        document["payload"]["iteration"] = 99
        ckpt.write_text(json.dumps(document))
        with pytest.raises(CheckpointError, match="checksum mismatch"):
            read_checkpoint(ckpt)

    def test_checkpoint_config_validation(self, tmp_path):
        with pytest.raises(ConfigurationError):
            CheckpointConfig(path=tmp_path / "c", every=0)

    def test_interrupt_mid_checkpoint_write_leaves_previous_intact(
        self, tmp_path, monkeypatch
    ):
        """A crash inside the checkpoint write itself must not tear the
        previously written checkpoint (atomic tmp + replace)."""
        log, catalog, features = _medium_dataset()
        ckpt = tmp_path / "c.ckpt.json"
        monkeypatch.setattr(
            checkpointing.os,
            "replace",
            faults.fail_on_call(checkpointing.os.replace, calls=2),
        )
        with pytest.raises(faults.SimulatedCrash):
            fit_skill_model(
                log,
                catalog,
                features,
                5,
                checkpoint=CheckpointConfig(path=ckpt, every=1),
                **FIT_KWARGS,
            )
        monkeypatch.undo()
        assert read_checkpoint(ckpt).iteration == 1  # first write survived
        assert not list(tmp_path.glob("*.tmp"))


class TestCrashSafePersistence:
    def test_crash_while_staging_preserves_old_model(
        self, fitted_tiny_model, tmp_path, monkeypatch
    ):
        save_model(fitted_tiny_model, tmp_path / "model")
        reference = load_model(tmp_path / "model").log_likelihood
        monkeypatch.setattr(
            serialize,
            "_write_bytes",
            faults.fail_on_call(serialize._write_bytes, calls=1),
        )
        with pytest.raises(faults.SimulatedCrash):
            save_model(fitted_tiny_model, tmp_path / "model")
        monkeypatch.undo()
        assert load_model(tmp_path / "model").log_likelihood == reference
        assert not list(tmp_path.glob("*.tmp"))

    def test_crash_between_replaces_is_detected_not_silently_loaded(
        self, tmp_path, monkeypatch
    ):
        # two models with different level counts: their array payloads are
        # guaranteed to differ, so the torn pair has a detectable mismatch
        log, catalog, features = _medium_dataset()
        first = fit_skill_model(log, catalog, features, 4, **FIT_KWARGS)
        second = fit_skill_model(log, catalog, features, 5, **FIT_KWARGS)
        save_model(first, tmp_path / "model")
        # crash after the NPZ replace but before the JSON replace
        monkeypatch.setattr(
            serialize, "_replace", faults.fail_on_call(serialize._replace, calls=2)
        )
        with pytest.raises(faults.SimulatedCrash):
            save_model(second, tmp_path / "model")
        monkeypatch.undo()
        with pytest.raises(DataError, match="checksum mismatch"):
            load_model(tmp_path / "model")
        assert not list(tmp_path.glob("*.tmp"))


class TestStrictConvergence:
    def test_strict_failure_names_iterations_and_checkpoint_survives(
        self, tiny_log, tiny_catalog, tiny_feature_set, tmp_path, monkeypatch
    ):
        """Satellite: the strict check reports the offending iteration pair
        and the checkpoint written just before the failure still loads."""
        lls = iter([0.0, -1000.0])

        def fake_assign(self, table, user_rows):
            ll = next(lls) / max(1, len(user_rows))
            return [
                PathResult(
                    levels=uniform_segment_levels(len(rows), 3), log_likelihood=ll
                )
                for rows in user_rows
            ]

        monkeypatch.setattr(AssignmentEngine, "assign", fake_assign)
        ckpt = tmp_path / "strict.ckpt.json"
        trainer = Trainer(
            TrainerConfig(
                num_levels=3, strict=True, init_min_actions=5, max_iterations=5
            )
        )
        with pytest.raises(ConvergenceError) as excinfo:
            trainer.fit(
                tiny_log,
                tiny_catalog,
                tiny_feature_set,
                checkpoint=CheckpointConfig(path=ckpt, every=1),
            )
        message = str(excinfo.value)
        assert "(iteration 1)" in message and "(iteration 2)" in message
        state = read_checkpoint(ckpt)
        assert state.iteration == 1
        assert state.parameters.num_levels == 3
