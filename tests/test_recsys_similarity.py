"""Tests for repro.recsys.similarity (Kappa-style item similarity)."""

import numpy as np
import pytest

from repro.core.difficulty import generation_difficulty
from repro.core.serialize import (
    attach_model_shm,
    load_model,
    load_similarity_payload,
    publish_model_shm,
    save_model,
    shm_similarity_payload,
)
from repro.exceptions import ConfigurationError, DataError
from repro.recsys.similarity import (
    ItemSimilarityIndex,
    build_similarity_index,
    similar_harder,
)


@pytest.fixture
def index(fitted_tiny_model):
    return build_similarity_index(fitted_tiny_model, k=5)


class TestBuild:
    def test_shapes_and_alignment(self, fitted_tiny_model, index):
        vocab = list(fitted_tiny_model.encoded.vocabulary("__item_id__"))
        n = len(vocab)
        assert list(index.items) == vocab
        assert index.neighbors.shape == (n, 5)
        assert index.scores.shape == (n, 5)
        assert index.k == 5
        assert index.neighbors.dtype == np.int32
        assert index.scores.dtype == np.float64
        assert index.meta["metric"] == "cosine"

    def test_item_is_never_its_own_neighbor(self, index):
        for pos in range(len(index.items)):
            assert pos not in index.neighbors[pos]

    def test_scores_are_valid_cosines_sorted_descending(self, index):
        assert np.all(index.scores >= 0.0)
        assert np.all(index.scores <= 1.0 + 1e-9)
        for row in index.scores:
            assert list(row) == sorted(row, reverse=True)

    def test_build_is_deterministic(self, fitted_tiny_model):
        a = build_similarity_index(fitted_tiny_model, k=4)
        b = build_similarity_index(fitted_tiny_model, k=4)
        assert np.array_equal(a.neighbors, b.neighbors)
        assert np.array_equal(a.scores, b.scores)

    def test_k_clamped_to_catalog_size(self, fitted_tiny_model):
        idx = build_similarity_index(fitted_tiny_model, k=500)
        assert idx.k == len(idx.items) - 1

    def test_k_validation(self, fitted_tiny_model):
        with pytest.raises(ConfigurationError):
            build_similarity_index(fitted_tiny_model, k=0)

    def test_unknown_prior_rejected(self, fitted_tiny_model):
        with pytest.raises(ConfigurationError):
            build_similarity_index(fitted_tiny_model, prior="bogus")

    def test_mismatched_tables_rejected(self):
        with pytest.raises(ConfigurationError):
            ItemSimilarityIndex(
                items=["a", "b"],
                neighbors=np.zeros((2, 3), dtype=np.int32),
                scores=np.zeros((2, 2)),
            )

    def test_unknown_item_position(self, index):
        with pytest.raises(DataError):
            index.position("ghost")


class TestPayloadRoundTrip:
    def test_to_from_payload(self, index):
        payload = index.to_payload()
        back = ItemSimilarityIndex.from_payload(payload, index.items)
        assert np.array_equal(back.neighbors, index.neighbors)
        assert np.array_equal(back.scores, index.scores)
        assert back.meta == index.meta
        assert back.neighbors_of(index.items[0]) == index.neighbors_of(index.items[0])

    def test_artifact_round_trip(self, fitted_tiny_model, index, tmp_path):
        prefix = tmp_path / "model"
        save_model(fitted_tiny_model, prefix, similarity=index.to_payload())
        payload = load_similarity_payload(prefix)
        assert payload is not None
        assert np.array_equal(
            np.asarray(payload["neighbors"], dtype=np.int32), index.neighbors
        )
        assert np.array_equal(np.asarray(payload["scores"]), index.scores)
        assert payload["meta"] == index.meta
        # The extra simidx_* arrays must not disturb plain model loading.
        model = load_model(prefix)
        assert list(model.encoded.vocabulary("__item_id__")) == list(index.items)

    def test_artifact_without_index_loads_none(self, fitted_tiny_model, tmp_path):
        prefix = tmp_path / "plain"
        save_model(fitted_tiny_model, prefix)
        assert load_similarity_payload(prefix) is None

    def test_shm_round_trip(self, fitted_tiny_model, index):
        segment, descriptor = publish_model_shm(
            fitted_tiny_model, similarity=index.to_payload()
        )
        try:
            model, attached = attach_model_shm(descriptor)
            payload = shm_similarity_payload(attached)
            assert payload is not None
            neighbors = np.array(payload["neighbors"])
            scores = np.array(payload["scores"])
            meta = dict(payload["meta"])
            # Drop the zero-copy views before unmapping the segment.
            del payload, model
            attached.close()
        finally:
            segment.close()
            segment.unlink()
        assert np.array_equal(neighbors, index.neighbors)
        assert np.array_equal(scores, index.scores)
        assert meta == index.meta

    def test_shm_without_index_yields_none(self, fitted_tiny_model):
        segment, descriptor = publish_model_shm(fitted_tiny_model)
        try:
            model, attached = attach_model_shm(descriptor)
            assert shm_similarity_payload(attached) is None
            del model
            attached.close()
        finally:
            segment.close()
            segment.unlink()


class TestSimilarHarder:
    @pytest.fixture
    def difficulty(self, fitted_tiny_model, index):
        mapping = generation_difficulty(fitted_tiny_model, prior="empirical")
        return np.asarray([mapping[item] for item in index.items])

    def test_returns_only_harder_items(self, index, difficulty):
        anchor = index.items[int(np.argmin(difficulty))]
        floor = float(difficulty[index.position(anchor)])
        picks = similar_harder(index, difficulty, anchor, k=index.k)
        for pick in picks:
            assert pick.difficulty > floor

    def test_margin_tightens_the_filter(self, index, difficulty):
        anchor = index.items[int(np.argmin(difficulty))]
        loose = similar_harder(index, difficulty, anchor, k=index.k, margin=0.0)
        tight = similar_harder(index, difficulty, anchor, k=index.k, margin=1e9)
        assert tight == []
        assert len(tight) <= len(loose)

    def test_preserves_similarity_order(self, index, difficulty):
        anchor = index.items[int(np.argmin(difficulty))]
        picks = similar_harder(index, difficulty, anchor, k=index.k)
        sims = [p.similarity for p in picks]
        assert sims == sorted(sims, reverse=True)

    def test_hardest_item_gets_empty_list(self, index, difficulty):
        anchor = index.items[int(np.argmax(difficulty))]
        assert similar_harder(index, difficulty, anchor, k=3) == []

    def test_unknown_anchor_rejected(self, index, difficulty):
        with pytest.raises(DataError):
            similar_harder(index, difficulty, "ghost", k=3)

    def test_misaligned_difficulty_rejected(self, index, difficulty):
        with pytest.raises(ConfigurationError):
            similar_harder(index, difficulty[:-1], index.items[0], k=3)

    def test_k_validation(self, index, difficulty):
        with pytest.raises(ConfigurationError):
            similar_harder(index, difficulty, index.items[0], k=0)
