"""Tests for the observability layer: metrics, logging, telemetry, checker.

Timing-sensitive behaviour is exercised with an injected fake clock —
nothing here sleeps.
"""

from __future__ import annotations

import importlib.util
import io
import json
import threading
import warnings
from concurrent.futures import BrokenExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeoutError
from pathlib import Path

import numpy as np
import pytest

from repro.core.parallel import ParallelConfig, PoolAssigner, WorkerPoolWarning
from repro.exceptions import ConfigurationError
from repro.obs.logging import (
    LOG_RECORD_KEYS,
    configure_logging,
    current_run_id,
    get_logger,
    reset_logging,
)
from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
    use_registry,
)
from repro.obs.telemetry import (
    CheckpointEvent,
    IterationRecord,
    TelemetryBuilder,
    TrainingTelemetry,
)


class FakeClock:
    """A manually advanced wall clock for deterministic timing tests."""

    def __init__(self) -> None:
        self.now = 0.0

    def advance(self, seconds: float) -> None:
        self.now += seconds

    def __call__(self) -> float:
        return self.now


# ---------------------------------------------------------------------------
# MetricsRegistry instruments
# ---------------------------------------------------------------------------


class TestInstruments:
    def test_counter_math(self):
        registry = MetricsRegistry()
        counter = registry.counter("events")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        # Get-or-create: same name, same instrument.
        assert registry.counter("events") is counter

    def test_gauge_last_value_wins(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("ll")
        gauge.set(-10.0)
        gauge.set(-3.5)
        assert gauge.value == -3.5

    def test_histogram_summary(self):
        hist = Histogram()
        for v in (1.0, 2.0, 3.0, 4.0):
            hist.observe(v)
        summary = hist.summary()
        assert summary["count"] == 4
        assert summary["total"] == pytest.approx(10.0)
        assert summary["mean"] == pytest.approx(2.5)
        assert summary["max"] == pytest.approx(4.0)

    def test_histogram_quantiles_over_1_to_100(self):
        hist = Histogram()
        for v in range(1, 101):
            hist.observe(float(v))
        assert hist.quantile(0.50) == pytest.approx(50.0, abs=1.0)
        assert hist.quantile(0.95) == pytest.approx(95.0, abs=1.0)
        assert hist.quantile(0.0) == 1.0
        assert hist.quantile(1.0) == 100.0

    def test_histogram_empty_quantile_is_zero(self):
        assert Histogram().quantile(0.5) == 0.0

    def test_histogram_single_observation_is_every_quantile(self):
        hist = Histogram()
        hist.observe(3.25)
        for q in (0.0, 0.5, 0.95, 1.0):
            assert hist.quantile(q) == 3.25
        summary = hist.summary()
        assert summary["count"] == 1
        assert summary["mean"] == summary["p50"] == summary["max"] == 3.25

    def test_histogram_quantile_clamps_out_of_range_q(self):
        hist = Histogram()
        for v in (1.0, 2.0, 3.0):
            hist.observe(v)
        assert hist.quantile(-0.5) == 1.0
        assert hist.quantile(2.0) == 3.0

    def test_histogram_empty_summary_shape(self):
        summary = Histogram().summary()
        assert summary == {
            "count": 0, "total": 0.0, "mean": 0.0,
            "p50": 0.0, "p95": 0.0, "max": 0.0,
        }

    def test_histogram_negative_values_keep_default_max(self):
        # max starts at 0.0 (timings are non-negative); all-negative
        # observations keep it there but the window quantiles are exact.
        hist = Histogram()
        for v in (-3.0, -1.0, -2.0):
            hist.observe(v)
        assert hist.max == 0.0
        assert hist.quantile(0.0) == -3.0
        assert hist.quantile(1.0) == -1.0
        assert hist.summary()["mean"] == pytest.approx(-2.0)

    def test_histogram_window_of_one_tracks_last_value(self):
        hist = Histogram(window=1)
        for v in (5.0, 9.0, 2.0):
            hist.observe(v)
        assert hist.count == 3
        assert hist.quantile(0.5) == 2.0  # only the last value retained

    def test_histogram_window_bounds_memory_but_not_lifetime_stats(self):
        hist = Histogram(window=10)
        for v in range(100):
            hist.observe(float(v))
        assert hist.count == 100  # lifetime
        assert hist.max == 99.0
        assert hist.quantile(0.0) >= 90.0  # window keeps only the tail

    def test_info_last_value_wins_and_clears(self):
        registry = MetricsRegistry()
        info = registry.info("foldin.status")
        assert info.value is None
        info.set("retrying")
        info.set("degraded")
        assert info.value == "degraded"
        assert registry.info("foldin.status") is info
        info.set(None)
        assert info.value is None

    def test_info_truncates_pathological_values(self):
        info = MetricsRegistry().info("last_error")
        info.set("x" * 10_000)
        assert len(info.value) == 500
        info.set(42)  # non-strings are stringified
        assert info.value == "42"

    def test_counter_thread_safety(self):
        registry = MetricsRegistry()
        counter = registry.counter("hammered")

        def hammer(_):
            for _ in range(1000):
                counter.inc()

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(hammer, range(8)))
        assert counter.value == 8000


class TestExemplars:
    def test_no_trace_means_no_exemplars_key(self):
        hist = Histogram()
        hist.observe(1.0)
        assert "exemplars" not in hist.summary()

    def test_exemplars_keep_the_slowest_traced_samples(self):
        hist = Histogram()
        for ms, trace in ((1.0, "ta"), (9.0, "tb"), (4.0, "tc"), (7.0, "td")):
            hist.observe(ms, trace=trace)
        rows = hist.summary()["exemplars"]
        # Three slots, slowest first; the fastest sample was evicted.
        assert [(row["value"], row["trace"]) for row in rows] == [
            (9.0, "tb"), (7.0, "td"), (4.0, "tc"),
        ]

    def test_exemplar_floor_rejects_fast_samples_cheaply(self):
        hist = Histogram()
        for value in (5.0, 6.0, 7.0):
            hist.observe(value, trace="slow")
        hist.observe(1.0, trace="fast")  # below the floor: not kept
        traces = {row["trace"] for row in hist.summary()["exemplars"]}
        assert traces == {"slow"}

    def test_observe_picks_up_ambient_trace(self):
        from repro.obs.trace import Tracer, use_tracer

        hist = Histogram()
        tracer = Tracer(enabled=True)
        with use_tracer(tracer):
            with tracer.span("slow.request") as handle:
                hist.observe(2.5)
        (row,) = hist.summary()["exemplars"]
        assert row == {"value": 2.5, "trace": handle.trace}

    def test_untraced_context_adds_nothing(self):
        hist = Histogram()
        hist.observe(2.5)  # default tracer is disabled: no ambient trace
        assert "exemplars" not in hist.summary()


class TestSnapshotConsistency:
    def test_snapshot_freezes_paired_instruments(self):
        """Regression: a counter and a histogram updated together must
        never export values from different moments.

        Writers bump ``c`` then observe into ``h`` under no lock of their
        own; because registry-created instruments share the registry's
        re-entrant lock and ``snapshot()`` holds it across the whole
        export, every snapshot must satisfy ``counter >= histogram.count``
        (the counter is always written first) with a gap of at most the
        writer count (one in-flight pair per writer thread).
        """
        registry = MetricsRegistry()
        counter = registry.counter("c")
        hist = registry.histogram("h")
        writers = 4
        per_writer = 2000
        stop = threading.Event()
        violations: list[tuple[int, int]] = []

        def write(_):
            for _ in range(per_writer):
                counter.inc()
                hist.observe(1.0)

        def watch():
            while not stop.is_set():
                snap = registry.snapshot()
                seen = (snap["counters"]["c"], snap["histograms"]["h"]["count"])
                if not (0 <= seen[0] - seen[1] <= writers):
                    violations.append(seen)

        watcher = threading.Thread(target=watch)
        watcher.start()
        try:
            with ThreadPoolExecutor(max_workers=writers) as pool:
                list(pool.map(write, range(writers)))
        finally:
            stop.set()
            watcher.join()
        assert violations == []
        final = registry.snapshot()
        assert final["counters"]["c"] == writers * per_writer
        assert final["histograms"]["h"]["count"] == writers * per_writer

    def test_standalone_instruments_get_private_locks(self):
        # Not registry-created: updates still thread-safe, just unfrozen
        # relative to other instruments.
        hist = Histogram()

        def hammer(_):
            for _ in range(1000):
                hist.observe(1.0)

        with ThreadPoolExecutor(max_workers=4) as pool:
            list(pool.map(hammer, range(4)))
        assert hist.count == 4000
        assert hist.total == pytest.approx(4000.0)


class TestTimingContextManagers:
    def test_timer_observes_elapsed_with_fake_clock(self):
        clock = FakeClock()
        registry = MetricsRegistry(clock=clock)
        with registry.timer("stage_seconds"):
            clock.advance(0.25)
        summary = registry.histogram("stage_seconds").summary()
        assert summary["count"] == 1
        assert summary["total"] == pytest.approx(0.25)

    def test_span_nesting_composes_dotted_names(self):
        clock = FakeClock()
        registry = MetricsRegistry(clock=clock)
        with registry.span("fit") as outer:
            clock.advance(1.0)
            with registry.span("assign") as inner:
                clock.advance(0.25)
        assert outer.qualified == "fit"
        assert inner.qualified == "fit.assign"
        assert outer.elapsed == pytest.approx(1.25)
        assert inner.elapsed == pytest.approx(0.25)
        snapshot = registry.snapshot()
        assert set(snapshot["histograms"]) == {"fit", "fit.assign"}

    def test_span_stack_unwinds_after_exception(self):
        registry = MetricsRegistry(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with registry.span("outer"):
                raise RuntimeError("boom")
        with registry.span("fresh") as span:
            pass
        assert span.qualified == "fresh"  # no stale "outer." prefix

    def test_span_nesting_is_per_thread(self):
        registry = MetricsRegistry(clock=FakeClock())
        names = []

        def in_thread():
            with registry.span("worker") as span:
                names.append(span.qualified)

        with registry.span("main"):
            with ThreadPoolExecutor(max_workers=1) as pool:
                pool.submit(in_thread).result()
        assert names == ["worker"]  # not "main.worker"


class TestRegistryScoping:
    def test_snapshot_shape(self):
        registry = MetricsRegistry(clock=FakeClock())
        registry.counter("c").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(0.1)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"c": 2}
        assert snapshot["gauges"] == {"g": 1.5}
        assert set(snapshot["histograms"]["h"]) == {
            "count", "total", "mean", "p50", "p95", "max",
        }
        # Info-free runs keep the legacy repro-metrics/1 shape exactly.
        assert "info" not in snapshot

    def test_snapshot_gains_info_section_only_when_used(self):
        registry = MetricsRegistry(clock=FakeClock())
        registry.info("foldin.status").set("ok")
        registry.info("foldin.last_error").set(None)
        snapshot = registry.snapshot()
        assert snapshot["info"] == {"foldin.last_error": None, "foldin.status": "ok"}

    def test_reset_clears_instruments(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.reset()
        assert registry.snapshot()["counters"] == {}

    def test_use_registry_scopes_and_restores(self):
        outer = get_registry()
        scoped = MetricsRegistry()
        with use_registry(scoped) as active:
            assert active is scoped
            assert get_registry() is scoped
        assert get_registry() is outer

    def test_set_registry_returns_previous(self):
        original = get_registry()
        replacement = MetricsRegistry()
        previous = set_registry(replacement)
        try:
            assert previous is original
            assert get_registry() is replacement
        finally:
            set_registry(original)


# ---------------------------------------------------------------------------
# PoolAssigner recovery counters (parent-side, no real pool needed)
# ---------------------------------------------------------------------------


def _tiny_assignment_problem():
    rng = np.random.default_rng(7)
    table = np.log(rng.dirichlet(np.ones(6), size=3))  # (levels, items)
    user_rows = [rng.integers(0, 6, size=10) for _ in range(4)]
    return table, user_rows


class TestPoolAssignerCounters:
    def test_rebuilds_then_degrades_and_counts(self, monkeypatch):
        def always_broken(self, tasks):
            raise BrokenExecutor("injected worker death")

        monkeypatch.setattr(PoolAssigner, "_run_chunks", always_broken)
        table, user_rows = _tiny_assignment_problem()
        config = ParallelConfig(
            users=True, workers=2, max_pool_restarts=2, restart_backoff=0.0
        )
        registry = MetricsRegistry()
        with use_registry(registry), warnings.catch_warnings():
            warnings.simplefilter("always")
            with PoolAssigner(config) as assigner:
                with pytest.warns(WorkerPoolWarning):
                    pooled = assigner.assign(table, user_rows)
                serial = PoolAssigner(None).assign(table, user_rows)

        assert assigner.event_counts == {
            "rebuilds": 2, "degraded": 1, "chunk_timeouts": 0,
        }
        counters = registry.snapshot()["counters"]
        assert counters["pool.rebuilds"] == 2
        assert counters["pool.degraded"] == 1
        # The degraded assigner still produced correct (serial) results.
        for a, b in zip(pooled, serial):
            np.testing.assert_array_equal(a.levels, b.levels)
            assert a.log_likelihood == pytest.approx(b.log_likelihood)

    def test_chunk_timeout_counted(self, monkeypatch):
        def too_slow(self, tasks):
            raise _FuturesTimeoutError()

        monkeypatch.setattr(PoolAssigner, "_run_chunks", too_slow)
        table, user_rows = _tiny_assignment_problem()
        config = ParallelConfig(
            users=True,
            workers=2,
            max_pool_restarts=0,
            restart_backoff=0.0,
            chunk_timeout=0.001,
        )
        registry = MetricsRegistry()
        with use_registry(registry), warnings.catch_warnings():
            warnings.simplefilter("always")
            with PoolAssigner(config) as assigner, pytest.warns(WorkerPoolWarning):
                assigner.assign(table, user_rows)
        assert assigner.event_counts["chunk_timeouts"] == 1
        assert assigner.event_counts["degraded"] == 1
        assert registry.snapshot()["counters"]["pool.chunk_timeouts"] == 1

    def test_assign_seconds_recorded_even_for_serial(self):
        table, user_rows = _tiny_assignment_problem()
        registry = MetricsRegistry()
        with use_registry(registry):
            PoolAssigner(None).assign(table, user_rows)
        assert registry.histogram("pool.assign_seconds").count == 1


# ---------------------------------------------------------------------------
# Structured logging
# ---------------------------------------------------------------------------


@pytest.fixture
def clean_logging():
    yield
    reset_logging()


class TestLogging:
    def test_jsonl_records_carry_full_schema(self, clean_logging):
        stream = io.StringIO()
        run = configure_logging("INFO", json_lines=True, stream=stream)
        log = get_logger("test.component")
        log.info("hello", extra={"obs": {"iteration": 3, "ll": -1.5}})
        record = json.loads(stream.getvalue().strip())
        for key in LOG_RECORD_KEYS:
            assert key in record
        assert record["level"] == "INFO"
        assert record["component"] == "test.component"
        assert record["event"] == "hello"
        assert record["fields"] == {"iteration": 3, "ll": -1.5}
        assert record["run"] == run == current_run_id()

    def test_human_format_renders_fields(self, clean_logging):
        stream = io.StringIO()
        configure_logging("INFO", json_lines=False, stream=stream)
        get_logger("test.component").info("step done", extra={"obs": {"k": 1}})
        line = stream.getvalue()
        assert "[test.component]" in line
        assert "step done" in line
        assert "k=1" in line

    def test_level_filtering(self, clean_logging):
        stream = io.StringIO()
        configure_logging("WARNING", json_lines=True, stream=stream)
        log = get_logger("test.component")
        log.info("quiet")
        log.warning("loud")
        lines = [l for l in stream.getvalue().splitlines() if l.strip()]
        assert len(lines) == 1
        assert json.loads(lines[0])["event"] == "loud"

    def test_reconfigure_replaces_handler(self, clean_logging):
        first, second = io.StringIO(), io.StringIO()
        configure_logging("INFO", json_lines=True, stream=first)
        configure_logging("INFO", json_lines=True, stream=second)
        get_logger("test.component").info("once")
        assert first.getvalue() == ""
        assert len(second.getvalue().splitlines()) == 1

    def test_env_fallbacks(self, clean_logging, monkeypatch):
        monkeypatch.setenv("REPRO_LOG_LEVEL", "DEBUG")
        monkeypatch.setenv("REPRO_LOG_JSON", "1")
        stream = io.StringIO()
        configure_logging(stream=stream)
        get_logger("test.component").debug("fine-grained")
        record = json.loads(stream.getvalue().strip())
        assert record["level"] == "DEBUG"

    def test_unknown_level_rejected(self, clean_logging):
        with pytest.raises(ConfigurationError):
            configure_logging("CHATTY")

    def test_run_id_pinnable(self, clean_logging):
        assert configure_logging("INFO", run_id="runabc") == "runabc"
        assert current_run_id() == "runabc"


# ---------------------------------------------------------------------------
# Telemetry data model
# ---------------------------------------------------------------------------


def _sample_telemetry() -> TrainingTelemetry:
    builder = TelemetryBuilder(run_id="runabc", stages=("table_build", "assign"))
    builder.record_iteration(
        IterationRecord(
            iteration=1,
            log_likelihood=-20.0,
            improvement=None,
            stage_seconds={"table_build": 0.1, "assign": 0.4},
            unchanged_users=None,
            level_histogram=(5, 3),
            level_drift=None,
        )
    )
    builder.record_iteration(
        IterationRecord(
            iteration=2,
            log_likelihood=-15.0,
            improvement=5.0,
            stage_seconds={"table_build": 0.1, "assign": 0.2},
            unchanged_users=1,
            level_histogram=(4, 4),
            level_drift=0.25,
        )
    )
    builder.record_checkpoint(
        CheckpointEvent(iteration=2, path="/tmp/ck.json", num_bytes=128, seconds=0.01)
    )
    return builder.build(
        log_likelihoods=(-20.0, -15.0),
        pool_events={"rebuilds": 1, "degraded": 0, "chunk_timeouts": 0},
        converged=True,
        total_seconds=0.9,
    )


class TestTelemetry:
    def test_builder_sums_stage_seconds(self):
        telemetry = _sample_telemetry()
        assert telemetry.stage_seconds["table_build"] == pytest.approx(0.2)
        assert telemetry.stage_seconds["assign"] == pytest.approx(0.6)

    def test_builder_reports_stages_that_never_ran(self):
        builder = TelemetryBuilder(run_id="r", stages=("checkpoint",))
        telemetry = builder.build(
            log_likelihoods=(), pool_events={}, converged=False, total_seconds=0.0
        )
        assert telemetry.stage_seconds == {"checkpoint": 0.0}

    def test_json_round_trip_exact(self):
        telemetry = _sample_telemetry()
        restored = TrainingTelemetry.from_json(
            json.loads(json.dumps(telemetry.to_json()))
        )
        assert restored == telemetry

    def test_summary_mentions_key_facts(self):
        text = _sample_telemetry().summary()
        assert "runabc" in text
        assert "rebuilds=1" in text
        assert "checkpoints: 1 written" in text
        assert "-20.0" in text and "-15.0" in text


# ---------------------------------------------------------------------------
# The CI artifact checker (tools/check_obs_output.py)
# ---------------------------------------------------------------------------

_CHECKER_PATH = Path(__file__).resolve().parents[1] / "tools" / "check_obs_output.py"


@pytest.fixture(scope="module")
def checker():
    spec = importlib.util.spec_from_file_location("check_obs_output", _CHECKER_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _valid_metrics_payload() -> dict:
    registry = MetricsRegistry(clock=FakeClock())
    registry.counter("train.iterations").inc(3)
    registry.gauge("train.log_likelihood").set(-12.5)
    registry.histogram("train.assign_seconds").observe(0.2)
    return {
        "schema": "repro-metrics/1",
        "run": "runabc",
        **registry.snapshot(),
        "telemetry": _sample_telemetry().to_json(),
    }


class TestChecker:
    def test_accepts_real_log_output(self, checker, clean_logging):
        stream = io.StringIO()
        configure_logging("INFO", json_lines=True, stream=stream)
        log = get_logger("test.component")
        log.info("one", extra={"obs": {"k": 1}})
        log.warning("two")
        assert checker.check_log_lines(stream.getvalue().splitlines()) == []

    def test_rejects_bad_log_lines(self, checker):
        problems = checker.check_log_lines(["not json", '{"ts": "only"}'])
        assert any("not valid JSON" in p for p in problems)
        assert any("missing key" in p for p in problems)
        assert checker.check_log_lines([]) == ["log stream contains no records"]

    def test_accepts_valid_metrics(self, checker):
        assert checker.check_metrics(_valid_metrics_payload()) == []

    def test_accepts_null_telemetry(self, checker):
        payload = _valid_metrics_payload()
        payload["telemetry"] = None
        assert checker.check_metrics(payload) == []

    def test_rejects_schema_and_shape_violations(self, checker):
        payload = _valid_metrics_payload()
        payload["schema"] = "repro-metrics/99"
        payload["counters"]["bad"] = "NaN-ish"
        del payload["histograms"]["train.assign_seconds"]["p95"]
        problems = checker.check_metrics(payload)
        assert any("schema" in p for p in problems)
        assert any("counters['bad']" in p for p in problems)
        assert any("'p95'" in p for p in problems)

    def test_info_section_validated_when_present(self, checker):
        payload = _valid_metrics_payload()
        payload["info"] = {"foldin.status": "ok", "foldin.last_error": None}
        assert checker.check_metrics(payload) == []
        payload["info"]["foldin.status"] = 17
        problems = checker.check_metrics(payload)
        assert any("info['foldin.status']" in p for p in problems)

    def test_require_metric(self, checker):
        payload = _valid_metrics_payload()
        payload["info"] = {"foldin.status": "ok"}
        assert checker.check_required_metrics(
            payload,
            ["train.iterations", "train.log_likelihood", "foldin.status"],
        ) == []
        problems = checker.check_required_metrics(payload, ["ingest.events"])
        assert problems and "ingest.events" in problems[0]

    def test_main_exit_codes(self, checker, tmp_path, capsys):
        metrics_path = tmp_path / "metrics.json"
        metrics_path.write_text(json.dumps(_valid_metrics_payload()))
        log_path = tmp_path / "fit.log.jsonl"
        log_path.write_text(
            json.dumps(
                {
                    "ts": "2026-01-01T00:00:00+00:00",
                    "level": "INFO",
                    "run": "runabc",
                    "component": "core.training",
                    "event": "iteration",
                    "elapsed_ms": 1.0,
                }
            )
            + "\n"
        )
        assert checker.main(["--log", str(log_path), "--metrics", str(metrics_path)]) == 0
        capsys.readouterr()
        metrics_path.write_text("{broken")
        assert checker.main(["--metrics", str(metrics_path)]) == 1
        assert "cannot read" in capsys.readouterr().out
        metrics_path.write_text(json.dumps(_valid_metrics_payload()))
        good = ["--metrics", str(metrics_path), "--require-metric", "train.iterations"]
        assert checker.main(good) == 0
        capsys.readouterr()
        bad = ["--metrics", str(metrics_path), "--require-metric", "ingest.events"]
        assert checker.main(bad) == 1
        assert "ingest.events" in capsys.readouterr().out
