"""Tests for repro.recsys.markov (sequential baseline)."""

import numpy as np
import pytest

from repro.data.actions import Action, ActionLog
from repro.data.items import Item, ItemCatalog
from repro.data.splits import holdout_last_position
from repro.exceptions import ConfigurationError, DataError
from repro.recsys.markov import MarkovItemModel


def _catalog(n=4):
    return ItemCatalog([Item(id=f"i{k}", features={"x": 0}) for k in range(n)])


def _cycle_log(num_users=5, length=12):
    """Users deterministically cycle i0 → i1 → i2 → i3 → i0 ..."""
    actions = []
    for u in range(num_users):
        for t in range(length):
            actions.append(Action(time=float(t), user=f"u{u}", item=f"i{t % 4}"))
    return ActionLog.from_actions(actions)


class TestMarkovItemModel:
    def test_learns_deterministic_transitions(self):
        model = MarkovItemModel(_catalog()).fit(_cycle_log())
        probs = model.next_item_probabilities("i1")
        assert np.argmax(probs) == 2  # i1 → i2
        assert probs[2] > 0.9

    def test_start_falls_back_to_popularity(self):
        model = MarkovItemModel(_catalog()).fit(_cycle_log())
        probs = model.next_item_probabilities(None)
        assert probs.sum() == pytest.approx(1.0)
        assert np.all(probs > 0)

    def test_unseen_successor_falls_back(self):
        actions = [
            Action(time=0.0, user="u", item="i0"),
            Action(time=1.0, user="u", item="i1"),
        ]
        model = MarkovItemModel(_catalog()).fit(ActionLog.from_actions(actions))
        # i1 has no successor in training: popularity fallback, normalized
        probs = model.next_item_probabilities("i1")
        assert probs.sum() == pytest.approx(1.0)

    def test_rows_normalized(self):
        model = MarkovItemModel(_catalog()).fit(_cycle_log())
        for item in ("i0", "i1", "i2", "i3"):
            assert model.next_item_probabilities(item).sum() == pytest.approx(1.0)

    def test_unknown_item_rejected(self):
        model = MarkovItemModel(_catalog()).fit(_cycle_log())
        with pytest.raises(DataError):
            model.next_item_probabilities("ghost")

    def test_unfitted_rejected(self):
        with pytest.raises(DataError):
            MarkovItemModel(_catalog()).next_item_probabilities("i0")

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MarkovItemModel(_catalog(), smoothing=0.0)
        with pytest.raises(ConfigurationError):
            MarkovItemModel(ItemCatalog([]))

    def test_predicts_cycle_perfectly(self):
        log = _cycle_log()
        train, held = holdout_last_position(log)
        model = MarkovItemModel(_catalog()).fit(train)
        result = model.predict_items(train, held)
        # the deterministic cycle makes every held-out item rank first
        assert result.mean_reciprocal_rank == pytest.approx(1.0)
        assert result.acc_at_10 == 1.0

    def test_empty_held_rejected(self):
        log = _cycle_log()
        model = MarkovItemModel(_catalog()).fit(log)
        with pytest.raises(DataError):
            model.predict_items(log, [])

    def test_beats_random_on_simulated_domain(self):
        from repro.recsys.ranking import random_guess_expectation
        from repro.synth import BeerConfig, generate_beer

        ds = generate_beer(
            BeerConfig(num_users=40, num_items=200, mean_sequence_length=40, seed=3)
        )
        train, held = holdout_last_position(ds.log)
        model = MarkovItemModel(ds.catalog).fit(train)
        result = model.predict_items(train, held)
        _, rand_rr = random_guess_expectation(len(ds.catalog))
        assert result.mean_reciprocal_rank > 2 * rand_rr
