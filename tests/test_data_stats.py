"""Tests for repro.data.stats."""

import numpy as np
import pytest

from repro.data.actions import Action, ActionLog
from repro.data.stats import describe_log, popularity_gini
from repro.exceptions import DataError


class TestPopularityGini:
    def test_uniform_counts_zero(self):
        assert popularity_gini(np.full(10, 7.0)) == pytest.approx(0.0, abs=1e-9)

    def test_concentrated_counts_near_one(self):
        counts = np.zeros(100)
        counts[0] = 1000
        assert popularity_gini(counts) > 0.95

    def test_known_value(self):
        # two items, counts 1 and 3: Gini = 1 + 1/2 − 2·(1+4)/(2·4) = 0.25
        assert popularity_gini(np.array([1.0, 3.0])) == pytest.approx(0.25)

    def test_all_zero(self):
        assert popularity_gini(np.zeros(5)) == 0.0

    def test_validation(self):
        with pytest.raises(DataError):
            popularity_gini(np.array([]))
        with pytest.raises(DataError):
            popularity_gini(np.array([-1.0]))

    def test_scale_invariant(self):
        counts = np.array([1.0, 2.0, 5.0, 10.0])
        assert popularity_gini(counts) == pytest.approx(popularity_gini(counts * 13))


class TestDescribeLog:
    def test_counts(self):
        actions = [
            Action(time=0.0, user="a", item="x"),
            Action(time=1.0, user="a", item="y"),
            Action(time=2.0, user="a", item="x"),
            Action(time=0.0, user="b", item="x"),
        ]
        stats = describe_log(ActionLog.from_actions(actions))
        assert stats.num_users == 2
        assert stats.num_items == 2
        assert stats.num_actions == 4
        assert stats.actions_per_user_mean == 2.0
        assert stats.actions_per_user_max == 3
        assert stats.actions_per_item_mean == 2.0
        assert stats.rare_items == 1  # y selected once

    def test_empty_log(self):
        with pytest.raises(DataError):
            describe_log(ActionLog([]))

    def test_simulators_are_head_skewed(self):
        """The popularity knobs must actually produce head-skewed catalogs —
        without that, Tables X/XI could not beat random guessing."""
        from repro.synth import CookingConfig, generate_cooking

        ds = generate_cooking(CookingConfig(num_users=120, num_items=400, seed=1))
        stats = describe_log(ds.log)
        assert stats.popularity_gini > 0.3

    def test_as_row_arity(self):
        actions = [Action(time=0.0, user="a", item="x"), Action(time=1.0, user="a", item="y")]
        stats = describe_log(ActionLog.from_actions(actions))
        assert len(stats.as_row()) == 7
