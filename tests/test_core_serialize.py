"""Tests for repro.core.serialize (model persistence)."""

import hashlib
import json

import numpy as np
import pytest

from repro.core.serialize import load_model, save_model
from repro.exceptions import DataError


def _restamp_checksum(json_path, npz_path):
    """Recompute the stored NPZ checksum after a test tampers with the NPZ.

    Lets a test target the failure mode *behind* the checksum gate (missing
    array, bad zip structure) instead of tripping the gate itself.
    """
    structure = json.loads(json_path.read_text())
    structure["checksums"]["npz"] = hashlib.sha256(npz_path.read_bytes()).hexdigest()
    json_path.write_text(json.dumps(structure))


class TestRoundTrip:
    def test_full_round_trip(self, fitted_tiny_model, tmp_path):
        save_model(fitted_tiny_model, tmp_path / "model")
        loaded = load_model(tmp_path / "model")

        # structure
        assert loaded.num_levels == fitted_tiny_model.num_levels
        assert loaded.feature_set.names == fitted_tiny_model.feature_set.names
        assert loaded.trace.log_likelihoods == pytest.approx(
            fitted_tiny_model.trace.log_likelihoods
        )
        # scoring behaviour is byte-identical
        np.testing.assert_allclose(
            loaded.item_score_table(), fitted_tiny_model.item_score_table()
        )
        # assignments and time lookups
        for user in fitted_tiny_model.assignments:
            np.testing.assert_array_equal(
                loaded.skill_trajectory(user), fitted_tiny_model.skill_trajectory(user)
            )
            assert loaded.skill_at(user, 3.0) == fitted_tiny_model.skill_at(user, 3.0)
        # downstream estimators work on the loaded model
        from repro.core.difficulty import generation_difficulty

        original = generation_difficulty(fitted_tiny_model, prior="empirical")
        restored = generation_difficulty(loaded, prior="empirical")
        for item_id, value in original.items():
            assert restored[item_id] == pytest.approx(value)

    def test_returns_both_paths(self, fitted_tiny_model, tmp_path):
        json_path, npz_path = save_model(fitted_tiny_model, tmp_path / "m")
        assert json_path.exists() and npz_path.exists()

    def test_vocabularies_survive(self, fitted_tiny_model, tmp_path):
        save_model(fitted_tiny_model, tmp_path / "model")
        loaded = load_model(tmp_path / "model")
        assert loaded.encoded.vocabulary("color") == fitted_tiny_model.encoded.vocabulary(
            "color"
        )
        top_original = fitted_tiny_model.top_items(1, 3)
        top_loaded = loaded.top_items(1, 3)
        assert [i for i, _ in top_original] == [i for i, _ in top_loaded]


class TestTelemetryPersistence:
    def test_telemetry_round_trips(self, fitted_tiny_model, tmp_path):
        assert fitted_tiny_model.telemetry is not None
        save_model(fitted_tiny_model, tmp_path / "model")
        loaded = load_model(tmp_path / "model")
        assert loaded.telemetry == fitted_tiny_model.telemetry

    def test_null_telemetry_loads(self, fitted_tiny_model, tmp_path):
        json_path, _ = save_model(fitted_tiny_model, tmp_path / "model")
        structure = json.loads(json_path.read_text())
        structure["telemetry"] = None
        json_path.write_text(json.dumps(structure))
        loaded = load_model(tmp_path / "model")
        assert loaded.telemetry is None

    def test_legacy_model_without_telemetry_key(self, fitted_tiny_model, tmp_path):
        json_path, _ = save_model(fitted_tiny_model, tmp_path / "model")
        structure = json.loads(json_path.read_text())
        del structure["telemetry"]  # pre-telemetry writers did not record one
        json_path.write_text(json.dumps(structure))
        loaded = load_model(tmp_path / "model")
        assert loaded.telemetry is None

    def test_malformed_telemetry_rejected(self, fitted_tiny_model, tmp_path):
        json_path, _ = save_model(fitted_tiny_model, tmp_path / "model")
        structure = json.loads(json_path.read_text())
        structure["telemetry"] = {"run_id": "x"}  # missing required keys
        json_path.write_text(json.dumps(structure))
        with pytest.raises(DataError, match="malformed telemetry"):
            load_model(tmp_path / "model")

    def test_save_and_load_record_metrics(self, fitted_tiny_model, tmp_path):
        from repro.obs.metrics import MetricsRegistry, use_registry

        registry = MetricsRegistry()
        with use_registry(registry):
            save_model(fitted_tiny_model, tmp_path / "model")
            load_model(tmp_path / "model")
        snapshot = registry.snapshot()
        assert snapshot["histograms"]["model.save_seconds"]["count"] == 1
        assert snapshot["histograms"]["model.load_seconds"]["count"] == 1
        assert snapshot["gauges"]["model.artifact_bytes"] > 0


class TestFailureModes:
    def test_missing_files(self, tmp_path):
        with pytest.raises(DataError):
            load_model(tmp_path / "nope")

    def test_malformed_json(self, fitted_tiny_model, tmp_path):
        json_path, _ = save_model(fitted_tiny_model, tmp_path / "model")
        json_path.write_text("{not json")
        with pytest.raises(DataError):
            load_model(tmp_path / "model")

    def test_wrong_format_version(self, fitted_tiny_model, tmp_path):
        json_path, _ = save_model(fitted_tiny_model, tmp_path / "model")
        structure = json.loads(json_path.read_text())
        structure["format_version"] = 999
        json_path.write_text(json.dumps(structure))
        with pytest.raises(DataError, match=str(json_path)):
            load_model(tmp_path / "model")

    def test_missing_array(self, fitted_tiny_model, tmp_path):
        json_path, npz_path = save_model(fitted_tiny_model, tmp_path / "model")
        # rewrite the npz without one required cell
        with np.load(npz_path) as npz:
            arrays = dict(npz)
        arrays.pop("cell_0_0")
        with npz_path.open("wb") as handle:
            np.savez(handle, **arrays)
        _restamp_checksum(json_path, npz_path)  # target the missing-array path
        with pytest.raises(DataError, match="missing required array"):
            load_model(tmp_path / "model")

    def test_truncated_npz(self, fitted_tiny_model, tmp_path):
        json_path, npz_path = save_model(fitted_tiny_model, tmp_path / "model")
        data = npz_path.read_bytes()
        npz_path.write_bytes(data[: len(data) // 2])
        _restamp_checksum(json_path, npz_path)  # target the truncation path
        with pytest.raises(DataError, match="truncated or corrupted"):
            load_model(tmp_path / "model")

    def test_checksum_mismatch_names_both_hashes(self, fitted_tiny_model, tmp_path):
        json_path, npz_path = save_model(fitted_tiny_model, tmp_path / "model")
        data = bytearray(npz_path.read_bytes())
        data[-1] ^= 0xFF  # flip one byte, keep the length
        npz_path.write_bytes(bytes(data))
        with pytest.raises(DataError, match="checksum mismatch") as excinfo:
            load_model(tmp_path / "model")
        assert str(npz_path) in str(excinfo.value)

    def test_legacy_model_without_checksums_still_loads(
        self, fitted_tiny_model, tmp_path
    ):
        json_path, _ = save_model(fitted_tiny_model, tmp_path / "model")
        structure = json.loads(json_path.read_text())
        del structure["checksums"]  # pre-checksum writers did not record one
        json_path.write_text(json.dumps(structure))
        loaded = load_model(tmp_path / "model")
        assert loaded.num_levels == fitted_tiny_model.num_levels


class TestCrashSafety:
    def test_no_tmp_litter_after_save(self, fitted_tiny_model, tmp_path):
        save_model(fitted_tiny_model, tmp_path / "model")
        assert not list(tmp_path.glob("*.tmp"))

    def test_resave_over_loaded_model(self, fitted_tiny_model, tmp_path):
        """The NPZ is read fully into memory on load, so the file handle is
        closed and the pair can be overwritten immediately (regression for
        a leaked NpzFile handle)."""
        save_model(fitted_tiny_model, tmp_path / "model")
        loaded = load_model(tmp_path / "model")
        save_model(loaded, tmp_path / "model")
        again = load_model(tmp_path / "model")
        assert again.log_likelihood == pytest.approx(fitted_tiny_model.log_likelihood)
