"""Tests for the generalized (skip-level) monotone DP and trainer."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dp import best_monotone_path, path_log_likelihood
from repro.exceptions import ConfigurationError


def brute_force_best(scores, max_step, penalties):
    """Exhaustive max over paths with steps in 0..max_step."""
    n, S = scores.shape
    best = -np.inf
    for path in itertools.product(range(S), repeat=n):
        steps = np.diff(path)
        if np.any(steps < 0) or np.any(steps > max_step):
            continue
        total = scores[np.arange(n), list(path)].sum()
        total += penalties[steps].sum() if n > 1 else 0.0
        best = max(best, total)
    return best


class TestSkipLevelDP:
    def test_jump_of_two_reachable(self):
        scores = np.full((2, 3), -100.0)
        scores[0, 0] = 0.0
        scores[1, 2] = 0.0
        blocked = best_monotone_path(scores, max_step=1)
        allowed = best_monotone_path(scores, max_step=2)
        assert allowed.levels.tolist() == [0, 2]
        assert allowed.log_likelihood > blocked.log_likelihood

    def test_penalties_change_the_optimum(self):
        scores = np.zeros((2, 3))
        scores[1, 2] = 1.0  # slight pull to jump 0 → 2
        free = best_monotone_path(scores, max_step=2)
        assert free.levels.tolist() == [0, 2]
        taxed = best_monotone_path(
            scores, max_step=2, step_log_penalties=np.array([0.0, 0.0, -5.0])
        )
        # the −5 jump tax beats the +1 gain: any non-jumping path wins
        assert taxed.levels.tolist() != [0, 2]

    def test_invalid_penalties(self):
        scores = np.zeros((2, 2))
        with pytest.raises(ConfigurationError):
            best_monotone_path(scores, max_step=1, step_log_penalties=np.array([0.0]))
        with pytest.raises(ConfigurationError):
            best_monotone_path(scores, max_step=1, step_log_penalties=np.array([0.0, 0.5]))
        with pytest.raises(ConfigurationError):
            best_monotone_path(scores, max_step=0)
        with pytest.raises(ConfigurationError):
            best_monotone_path(
                scores, max_step=1, step_log_penalties=np.array([-np.inf, -np.inf])
            )

    def test_path_ll_validates_max_step(self):
        scores = np.zeros((2, 3))
        with pytest.raises(ConfigurationError):
            path_log_likelihood(scores, np.array([0, 2]))  # default max_step=1
        assert path_log_likelihood(scores, np.array([0, 2]), max_step=2) == 0.0

    def test_path_ll_includes_penalties(self):
        scores = np.zeros((3, 3))
        penalties = np.array([0.0, -1.0, -3.0])
        total = path_log_likelihood(
            scores, np.array([0, 1, 1]), max_step=2, step_log_penalties=penalties
        )
        assert total == pytest.approx(-1.0)  # one 1-step, one 0-step


@settings(max_examples=120, deadline=None)
@given(
    n=st.integers(1, 5),
    s=st.integers(1, 4),
    max_step=st.integers(1, 3),
    data=st.data(),
)
def test_skip_dp_matches_brute_force(n, s, max_step, data):
    """Property: the generalized DP is optimal for any step bound/penalty."""
    flat = data.draw(
        st.lists(
            st.floats(min_value=-50, max_value=50, allow_nan=False),
            min_size=n * s,
            max_size=n * s,
        )
    )
    raw = data.draw(
        st.lists(
            st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
            min_size=max_step + 1,
            max_size=max_step + 1,
        )
    )
    penalties = -np.asarray(raw)
    scores = np.asarray(flat).reshape(n, s)
    result = best_monotone_path(scores, max_step=max_step, step_log_penalties=penalties)
    assert result.log_likelihood == pytest.approx(
        brute_force_best(scores, max_step, penalties)
    )
    assert path_log_likelihood(
        scores, result.levels, max_step=max_step, step_log_penalties=penalties
    ) == pytest.approx(result.log_likelihood)


class TestSkipLevelTrainer:
    def test_trainer_accepts_skip_config(self, tiny_log, tiny_catalog, tiny_feature_set):
        from repro.core.training import fit_skill_model

        model = fit_skill_model(
            tiny_log,
            tiny_catalog,
            tiny_feature_set,
            3,
            max_step=2,
            step_log_penalties=(0.0, -0.3, -1.2),
            init_min_actions=5,
            max_iterations=10,
        )
        for seq in tiny_log:
            steps = np.diff(model.skill_trajectory(seq.user))
            assert np.all((steps >= 0) & (steps <= 2))

    def test_config_validation(self):
        from repro.core.training import TrainerConfig

        with pytest.raises(ConfigurationError):
            TrainerConfig(num_levels=3, max_step=0)
        with pytest.raises(ConfigurationError):
            TrainerConfig(num_levels=3, max_step=2, step_log_penalties=(0.0, -1.0))

    def test_parallel_matches_serial_with_skip(self, tiny_log, tiny_catalog, tiny_feature_set):
        from repro.core.parallel import ParallelConfig
        from repro.core.training import fit_skill_model

        kwargs = dict(
            max_step=2,
            step_log_penalties=(0.0, -0.3, -1.2),
            init_min_actions=5,
            max_iterations=10,
        )
        serial = fit_skill_model(tiny_log, tiny_catalog, tiny_feature_set, 3, **kwargs)
        parallel = fit_skill_model(
            tiny_log,
            tiny_catalog,
            tiny_feature_set,
            3,
            parallel=ParallelConfig(users=True, workers=2),
            **kwargs,
        )
        for user in tiny_log.users:
            np.testing.assert_array_equal(
                serial.skill_trajectory(user), parallel.skill_trajectory(user)
            )
