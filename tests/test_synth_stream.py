"""Tests for the out-of-core synthetic generator (repro.synth.stream)."""

import numpy as np
import pytest

from repro.synth import (
    SyntheticConfig,
    generate_synthetic,
    generate_synthetic_store,
)
from repro.synth.stream import SyntheticStoreResult


def _small_config(**overrides):
    base = dict(num_users=30, num_items=60, num_levels=3, mean_sequence_length=8.0, seed=5)
    base.update(overrides)
    return SyntheticConfig(**base)


class TestStreamGenerator:
    def test_writes_a_valid_store(self, tmp_path):
        config = _small_config()
        result = generate_synthetic_store(
            config, tmp_path / "s.store", users_per_shard=8
        )
        assert isinstance(result, SyntheticStoreResult)
        store = result.store
        assert store.num_users == config.num_users
        assert store.num_items == config.num_items
        assert store.num_shards == 4  # ceil(30 / 8)
        assert store.verify(deep=True)["ok"]
        # Store codes are item ids: the vocabulary was registered 0..N-1
        # up front, so no per-action translation is ever needed.
        assert store.item_ids == list(range(config.num_items))

    def test_catalog_matches_in_ram_generator(self, tmp_path):
        """Items come from the same recipe as the in-RAM path: identical
        catalog and ground-truth difficulty for identical config."""
        config = _small_config()
        result = generate_synthetic_store(config, tmp_path / "s.store")
        ram = generate_synthetic(config)
        assert len(result.catalog) == len(ram.catalog)
        for item in ram.catalog:
            assert result.catalog[item.id].features == item.features
        assert result.true_difficulty == ram.true_difficulty

    def test_deterministic_for_seed(self, tmp_path):
        config = _small_config(seed=9)
        a = generate_synthetic_store(config, tmp_path / "a.store").store
        b = generate_synthetic_store(config, tmp_path / "b.store").store
        assert a.num_actions == b.num_actions
        for i in range(a.num_shards):
            sa, sb = a.shard(i, eager=True), b.shard(i, eager=True)
            assert sa.users == sb.users
            assert np.array_equal(sa.codes, sb.codes)
            assert np.array_equal(sa.times, sb.times)

    def test_sequences_are_plausible(self, tmp_path):
        config = _small_config(num_users=100, mean_sequence_length=12.0)
        store = generate_synthetic_store(config, tmp_path / "s.store").store
        lengths = [
            length
            for shard in store.iter_shards(eager=True)
            for length in shard.lengths
        ]
        assert min(lengths) >= 1
        assert 6.0 < float(np.mean(lengths)) < 20.0
        for shard in store.iter_shards(eager=True):
            assert shard.codes.min() >= 0
            assert shard.codes.max() < config.num_items
            for times in np.split(np.asarray(shard.times), shard.offsets[1:-1]):
                assert np.all(np.diff(times) >= 0)

    def test_block_boundary_invariant_user_count(self, tmp_path):
        """Generation in small blocks covers every user exactly once."""
        config = _small_config(num_users=25)
        store = generate_synthetic_store(
            config, tmp_path / "s.store", block_users=4
        ).store
        assert store.num_users == 25
        assert len(set(store.users())) == 25

    def test_start_level_weights_accepted(self, tmp_path):
        config = _small_config(start_level_weights=(5.0, 1.0, 1.0))
        store = generate_synthetic_store(config, tmp_path / "s.store").store
        assert store.num_users == config.num_users

    def test_store_is_trainable(self, tmp_path, tiny_feature_set):
        from repro.core.training import fit_skill_model

        config = _small_config()
        result = generate_synthetic_store(config, tmp_path / "s.store")
        model = fit_skill_model(
            result.store,
            result.catalog,
            result.feature_set,
            config.num_levels,
            max_iterations=3,
            init_min_actions=5,
        )
        assert len(model.assignments) == config.num_users
