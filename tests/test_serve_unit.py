"""Unit tests for the serving building blocks (batcher, admission, state)."""

import asyncio
import json
import os

import pytest

from repro.core.serialize import artifact_metadata, save_model
from repro.exceptions import ConfigurationError, DataError
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.serve import AdmissionConfig, AdmissionController, MicroBatcher, ModelState


def run(coro):
    return asyncio.run(coro)


class TestMicroBatcher:
    def test_concurrent_submits_coalesce_into_one_flush(self):
        sizes = []

        def batch_fn(payloads):
            sizes.append(len(payloads))
            return [p * 10 for p in payloads]

        async def scenario():
            batcher = MicroBatcher(batch_fn, max_batch=16, max_wait_ms=20.0)
            await batcher.start()
            results = await asyncio.gather(*(batcher.submit(i) for i in range(5)))
            await batcher.stop()
            return results

        assert run(scenario()) == [0, 10, 20, 30, 40]
        assert sizes == [5]

    def test_max_batch_splits_flushes(self):
        sizes = []

        def batch_fn(payloads):
            sizes.append(len(payloads))
            return payloads

        async def scenario():
            batcher = MicroBatcher(batch_fn, max_batch=4, max_wait_ms=50.0)
            await batcher.start()
            await asyncio.gather(*(batcher.submit(i) for i in range(10)))
            await batcher.stop()

        run(scenario())
        assert sum(sizes) == 10
        assert max(sizes) <= 4
        assert len(sizes) >= 3

    def test_max_batch_one_is_sequential_dispatch(self):
        sizes = []

        def batch_fn(payloads):
            sizes.append(len(payloads))
            return payloads

        async def scenario():
            batcher = MicroBatcher(batch_fn, max_batch=1, max_wait_ms=5.0)
            await batcher.start()
            await asyncio.gather(*(batcher.submit(i) for i in range(6)))
            await batcher.stop()

        run(scenario())
        assert sizes == [1] * 6

    def test_batch_error_fails_every_request_of_the_flush(self):
        def batch_fn(payloads):
            raise ValueError("kernel exploded")

        async def scenario():
            batcher = MicroBatcher(batch_fn, max_batch=8, max_wait_ms=5.0)
            await batcher.start()
            results = await asyncio.gather(
                *(batcher.submit(i) for i in range(3)), return_exceptions=True
            )
            await batcher.stop()
            return results

        results = run(scenario())
        assert all(isinstance(r, ValueError) for r in results)

    def test_result_count_mismatch_is_a_typed_error(self):
        async def scenario():
            batcher = MicroBatcher(lambda payloads: [1], max_batch=8, max_wait_ms=5.0)
            await batcher.start()
            results = await asyncio.gather(
                *(batcher.submit(i) for i in range(2)), return_exceptions=True
            )
            await batcher.stop()
            return results

        assert all(isinstance(r, ConfigurationError) for r in run(scenario()))

    def test_stop_flushes_the_remaining_queue(self):
        flushed = []

        def batch_fn(payloads):
            flushed.extend(payloads)
            return payloads

        async def scenario():
            batcher = MicroBatcher(batch_fn, max_batch=64, max_wait_ms=10_000.0)
            await batcher.start()
            pending = [asyncio.ensure_future(batcher.submit(i)) for i in range(3)]
            await asyncio.sleep(0)  # queue the submits, far from the window
            await batcher.stop()
            return await asyncio.gather(*pending)

        assert run(scenario()) == [0, 1, 2]
        assert flushed == [0, 1, 2]

    def test_submit_when_not_running_raises(self):
        async def scenario():
            batcher = MicroBatcher(lambda p: p)
            with pytest.raises(ConfigurationError):
                await batcher.submit(1)
            await batcher.start()
            await batcher.stop()
            with pytest.raises(ConfigurationError):
                await batcher.submit(1)

        run(scenario())

    def test_observes_batch_size_histogram(self):
        async def scenario():
            batcher = MicroBatcher(lambda p: p, max_batch=8, max_wait_ms=20.0)
            await batcher.start()
            await asyncio.gather(*(batcher.submit(i) for i in range(4)))
            await batcher.stop()

        with use_registry(MetricsRegistry()) as registry:
            run(scenario())
            digest = registry.snapshot()["histograms"]["serve.batch_size"]
        assert digest["count"] >= 1
        assert digest["max"] == 4

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ConfigurationError):
            MicroBatcher(lambda p: p, max_batch=0)
        with pytest.raises(ConfigurationError):
            MicroBatcher(lambda p: p, max_wait_ms=-1.0)


class TestAdmission:
    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            AdmissionConfig(max_queue=0)
        with pytest.raises(ConfigurationError):
            AdmissionConfig(default_timeout_seconds=0.0)
        with pytest.raises(ConfigurationError):
            AdmissionConfig(endpoint_timeouts={"predict": -1.0})

    def test_queue_full_sheds_with_counters(self):
        with use_registry(MetricsRegistry()) as registry:
            controller = AdmissionController(AdmissionConfig(max_queue=2))
            tickets = [controller.admit("predict") for _ in range(2)]
            assert all(t is not None for t in tickets)
            assert controller.admit("predict") is None
            snapshot = registry.snapshot()
            assert snapshot["counters"]["serve.shed"] == 1
            assert snapshot["counters"]["serve.shed.queue_full"] == 1
            assert snapshot["gauges"]["serve.queue_depth"] == 2
            for ticket in tickets:
                controller.release(ticket)
            assert registry.snapshot()["gauges"]["serve.queue_depth"] == 0
            assert controller.admit("predict") is not None

    def test_release_is_idempotent(self):
        with use_registry(MetricsRegistry()):
            controller = AdmissionController(AdmissionConfig(max_queue=4))
            ticket = controller.admit("skill")
            controller.release(ticket)
            controller.release(ticket)
            assert controller.inflight == 0

    def test_deadlines_use_the_injected_clock(self):
        now = [100.0]
        with use_registry(MetricsRegistry()) as registry:
            controller = AdmissionController(
                AdmissionConfig(
                    default_timeout_seconds=5.0,
                    endpoint_timeouts={"predict": 0.5},
                ),
                clock=lambda: now[0],
            )
            slow = controller.admit("skill")
            fast = controller.admit("predict")
            assert slow.deadline == pytest.approx(105.0)
            assert fast.deadline == pytest.approx(100.5)
            now[0] = 101.0
            assert not controller.expired(slow)
            assert controller.expired(fast)
            assert controller.remaining(fast) == pytest.approx(-0.5)
            controller.shed_deadline()
            assert registry.snapshot()["counters"]["serve.shed.deadline"] == 1


@pytest.fixture
def model_prefix(fitted_tiny_model, tmp_path):
    prefix = tmp_path / "model"
    save_model(fitted_tiny_model, prefix)
    return prefix


def _bump_mtime(prefix):
    """Make the next save's stat signature differ even on coarse clocks."""
    for suffix in (".json", ".npz"):
        path = prefix.with_suffix(suffix)
        stat = path.stat()
        os.utime(path, ns=(stat.st_atime_ns, stat.st_mtime_ns + 1_000_000))


class TestArtifactMetadata:
    def test_reports_the_pair(self, model_prefix, fitted_tiny_model):
        meta = artifact_metadata(model_prefix)
        assert meta["format_version"] == 1
        assert meta["checksum_algorithm"] == "sha256"
        assert meta["checksum_verified"] is True
        assert len(meta["npz_checksum"]) == 64
        assert meta["num_users"] == len(fitted_tiny_model.assignments)
        assert meta["num_items"] == len(fitted_tiny_model.encoded.item_ids)
        assert meta["num_levels"] == fitted_tiny_model.num_levels
        assert meta["telemetry_run_id"] == fitted_tiny_model.telemetry.run_id
        assert meta["json_bytes"] > 0 and meta["npz_bytes"] > 0
        assert meta["converged"] == fitted_tiny_model.trace.converged

    def test_missing_npz_is_reported_not_raised(self, model_prefix):
        model_prefix.with_suffix(".npz").unlink()
        meta = artifact_metadata(model_prefix)
        assert meta["npz_bytes"] is None
        assert meta["checksum_verified"] is False

    def test_torn_pair_reports_unverified(self, model_prefix):
        with open(model_prefix.with_suffix(".npz"), "ab") as handle:
            handle.write(b"garbage")
        assert artifact_metadata(model_prefix)["checksum_verified"] is False

    def test_missing_json_raises(self, tmp_path):
        with pytest.raises(DataError):
            artifact_metadata(tmp_path / "nope")

    def test_malformed_json_raises(self, model_prefix):
        model_prefix.with_suffix(".json").write_text("{not json", encoding="utf-8")
        with pytest.raises(DataError):
            artifact_metadata(model_prefix)


class TestModelState:
    def test_load_builds_a_full_bundle(self, model_prefix):
        state = ModelState(model_prefix)
        with pytest.raises(DataError):
            state.current  # noqa: B018 — access before load must raise
        bundle = state.load()
        assert state.loaded
        assert bundle.version == 1
        assert bundle.metadata["checksum_verified"] is True
        assert set(bundle.difficulties) == {"uniform", "empirical"}

    def test_unchanged_artifacts_do_not_reload(self, model_prefix):
        state = ModelState(model_prefix)
        state.load()
        assert state.maybe_reload() is False
        assert state.reloads == 0

    def test_rewrite_swaps_the_bundle(self, model_prefix, fitted_tiny_model):
        with use_registry(MetricsRegistry()) as registry:
            state = ModelState(model_prefix)
            first = state.load()
            save_model(fitted_tiny_model, model_prefix)
            _bump_mtime(model_prefix)
            assert state.maybe_reload() is True
            assert state.current.version == first.version + 1
            assert state.reloads == 1
            assert registry.snapshot()["counters"]["serve.reloads"] == 1

    def test_corrupt_rewrite_keeps_the_old_model(self, model_prefix):
        with use_registry(MetricsRegistry()) as registry:
            state = ModelState(model_prefix)
            first = state.load()
            with open(model_prefix.with_suffix(".npz"), "ab") as handle:
                handle.write(b"torn")
            _bump_mtime(model_prefix)
            assert state.maybe_reload() is False
            assert state.current is first
            assert state.reload_failures == 1
            assert registry.snapshot()["counters"]["serve.reload_failures"] == 1
            # same broken signature: no second validation attempt
            assert state.maybe_reload() is False
            assert state.reload_failures == 1

    def test_recovers_after_a_failed_reload(self, model_prefix, fitted_tiny_model):
        # A fake clock steps past the failure-backoff window so the good
        # artifact is revalidated on the very next poll.
        now = [1000.0]
        state = ModelState(model_prefix, clock=lambda: now[0])
        state.load()
        json_path = model_prefix.with_suffix(".json")
        structure = json.loads(json_path.read_text(encoding="utf-8"))
        structure["checksums"]["npz"] = "0" * 64
        json_path.write_text(json.dumps(structure), encoding="utf-8")
        _bump_mtime(model_prefix)
        assert state.maybe_reload() is False
        save_model(fitted_tiny_model, model_prefix)
        _bump_mtime(model_prefix)
        now[0] += state.retry_base_seconds + 0.1
        assert state.maybe_reload() is True
        assert state.current.version == 2
