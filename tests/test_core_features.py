"""Tests for repro.core.features."""

import numpy as np
import pytest

from repro.core.features import ID_FEATURE, FeatureKind, FeatureSet, FeatureSpec
from repro.data.items import Item, ItemCatalog
from repro.exceptions import ConfigurationError, SchemaError


class TestFeatureSpec:
    def test_vocabulary_only_for_categorical(self):
        with pytest.raises(ConfigurationError):
            FeatureSpec("x", FeatureKind.COUNT, vocabulary=("a",))

    def test_duplicate_vocabulary_rejected(self):
        with pytest.raises(ConfigurationError):
            FeatureSpec("x", FeatureKind.CATEGORICAL, vocabulary=("a", "a"))

    def test_id_spec(self):
        spec = FeatureSpec.id_spec()
        assert spec.is_id
        assert spec.kind is FeatureKind.CATEGORICAL


class TestFeatureSet:
    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            FeatureSet([])

    def test_duplicate_names_rejected(self):
        specs = [FeatureSpec("x", FeatureKind.COUNT), FeatureSpec("x", FeatureKind.COUNT)]
        with pytest.raises(ConfigurationError):
            FeatureSet(specs)

    def test_with_id_feature_idempotent(self, tiny_feature_set):
        once = tiny_feature_set.with_id_feature()
        twice = once.with_id_feature()
        assert once is twice
        assert once.names[0] == ID_FEATURE

    def test_subset(self, tiny_feature_set):
        subset = tiny_feature_set.subset(["weight", "color"])
        assert subset.names == ("color", "weight")  # declared order kept

    def test_subset_unknown(self, tiny_feature_set):
        with pytest.raises(ConfigurationError):
            tiny_feature_set.subset(["ghost"])

    def test_index_of_feature(self, tiny_feature_set):
        assert tiny_feature_set.index_of_feature("steps") == 1
        with pytest.raises(ConfigurationError):
            tiny_feature_set.index_of_feature("nope")


class TestEncoding:
    def test_columns_and_vocab(self, tiny_catalog, tiny_feature_set):
        encoded = tiny_feature_set.encode(tiny_catalog)
        assert encoded.num_items == 12
        color = encoded.column("color")
        vocab = encoded.vocabulary("color")
        assert set(vocab) == {"red", "green", "blue"}
        # codes decode back to original values
        values = [vocab[code] for code in color]
        assert values == tiny_catalog.feature_values("color")

    def test_id_feature_encoding(self, tiny_catalog, tiny_feature_set):
        encoded = tiny_feature_set.with_id_feature().encode(tiny_catalog)
        vocab = encoded.vocabulary(ID_FEATURE)
        assert vocab == tiny_catalog.ids

    def test_rows_for(self, tiny_catalog, tiny_feature_set):
        encoded = tiny_feature_set.encode(tiny_catalog)
        rows = encoded.rows_for(["i3", "i0", "i3"])
        assert list(rows) == [3, 0, 3]

    def test_rows_for_unknown(self, tiny_catalog, tiny_feature_set):
        encoded = tiny_feature_set.encode(tiny_catalog)
        with pytest.raises(SchemaError):
            encoded.rows_for(["ghost"])

    def test_closed_vocabulary_enforced(self):
        spec = FeatureSpec("c", FeatureKind.CATEGORICAL, vocabulary=("a", "b"))
        catalog = ItemCatalog([Item(id=1, features={"c": "z"})])
        with pytest.raises(SchemaError):
            FeatureSet([spec]).encode(catalog)

    def test_closed_vocabulary_codes_follow_declaration(self):
        spec = FeatureSpec("c", FeatureKind.CATEGORICAL, vocabulary=("b", "a"))
        catalog = ItemCatalog(
            [Item(id=1, features={"c": "a"}), Item(id=2, features={"c": "b"})]
        )
        encoded = FeatureSet([spec]).encode(catalog)
        assert list(encoded.column("c")) == [1, 0]

    def test_count_validation(self):
        spec = FeatureSpec("n", FeatureKind.COUNT)
        for bad in (-1, 2.5):
            catalog = ItemCatalog([Item(id=1, features={"n": bad})])
            with pytest.raises(SchemaError):
                FeatureSet([spec]).encode(catalog)

    def test_positive_validation(self):
        for kind in (FeatureKind.POSITIVE, FeatureKind.LOG_POSITIVE):
            spec = FeatureSpec("v", kind)
            catalog = ItemCatalog([Item(id=1, features={"v": 0.0})])
            with pytest.raises(SchemaError):
                FeatureSet([spec]).encode(catalog)

    def test_non_numeric_rejected(self):
        spec = FeatureSpec("v", FeatureKind.POSITIVE)
        catalog = ItemCatalog([Item(id=1, features={"v": "heavy"})])
        with pytest.raises(SchemaError):
            FeatureSet([spec]).encode(catalog)

    def test_non_finite_rejected(self):
        spec = FeatureSpec("v", FeatureKind.POSITIVE)
        catalog = ItemCatalog([Item(id=1, features={"v": float("inf")})])
        with pytest.raises(SchemaError):
            FeatureSet([spec]).encode(catalog)

    def test_count_column_dtype(self, tiny_catalog, tiny_feature_set):
        encoded = tiny_feature_set.encode(tiny_catalog)
        assert encoded.column("steps").dtype == np.int64
        assert encoded.column("weight").dtype == np.float64

    def test_vocabulary_of_numeric_feature_rejected(self, tiny_catalog, tiny_feature_set):
        encoded = tiny_feature_set.encode(tiny_catalog)
        with pytest.raises(ConfigurationError):
            encoded.vocabulary("weight")
