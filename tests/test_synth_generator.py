"""Tests for repro.synth.generator (the paper's synthetic recipe)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.synth.generator import SyntheticConfig, generate_synthetic, synthetic_feature_set


@pytest.fixture(scope="module")
def small_synth():
    return generate_synthetic(SyntheticConfig(num_users=60, num_items=500, seed=0))


class TestSyntheticConfig:
    def test_items_must_divide_levels(self):
        with pytest.raises(ConfigurationError):
            SyntheticConfig(num_items=501)

    def test_dense_divides_items_by_five(self):
        config = SyntheticConfig(num_users=10, num_items=500, seed=3)
        dense = config.dense()
        assert dense.num_items == 100
        assert dense.seed == config.seed
        assert dense.num_users == config.num_users

    def test_paper_scale(self):
        config = SyntheticConfig.paper_scale()
        assert config.num_users == 10_000
        assert config.num_items == 50_000

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SyntheticConfig(num_levels=1, num_items=10)
        with pytest.raises(ConfigurationError):
            SyntheticConfig(at_level_prob=1.5)
        with pytest.raises(ConfigurationError):
            SyntheticConfig(categorical_size=3, num_levels=5)


class TestGeneration:
    def test_counts(self, small_synth):
        assert small_synth.log.num_users == 60
        assert len(small_synth.catalog) == 500

    def test_equal_item_pools_per_level(self, small_synth):
        from collections import Counter

        counter = Counter(small_synth.true_difficulty.values())
        assert set(counter) == {1.0, 2.0, 3.0, 4.0, 5.0}
        assert len(set(counter.values())) == 1  # equal pool sizes

    def test_true_skills_monotone_step_by_one(self, small_synth):
        for seq in small_synth.log:
            levels = small_synth.true_skills[seq.user]
            steps = np.diff(levels)
            assert np.all((steps == 0) | (steps == 1))

    def test_within_capacity_selection(self, small_synth):
        """Paper step 3c: selected items are never above the user's level."""
        for seq in small_synth.log:
            levels = small_synth.true_skills[seq.user]
            for action, level in zip(seq, levels):
                assert small_synth.true_difficulty[action.item] <= level

    def test_deterministic(self):
        config = SyntheticConfig(num_users=10, num_items=50, seed=9)
        a = generate_synthetic(config)
        b = generate_synthetic(config)
        assert [s.items for s in a.log] == [s.items for s in b.log]

    def test_different_seeds_differ(self):
        a = generate_synthetic(SyntheticConfig(num_users=10, num_items=50, seed=1))
        b = generate_synthetic(SyntheticConfig(num_users=10, num_items=50, seed=2))
        assert [s.items for s in a.log] != [s.items for s in b.log]

    def test_feature_signal_separates_levels(self, small_synth):
        """Items of level 5 must have larger mean count/intensity features
        than items of level 1 — that is the planted signal."""
        lows = [i for i in small_synth.catalog if i.metadata["difficulty"] == 1.0]
        highs = [i for i in small_synth.catalog if i.metadata["difficulty"] == 5.0]
        assert np.mean([i.features["steps"] for i in highs]) > np.mean(
            [i.features["steps"] for i in lows]
        )
        assert np.mean([i.features["intensity"] for i in highs]) > np.mean(
            [i.features["intensity"] for i in lows]
        )

    def test_encodes_under_schema(self, small_synth):
        encoded = small_synth.feature_set.encode(small_synth.catalog)
        assert encoded.num_items == 500

    def test_feature_set_without_id(self):
        fs = synthetic_feature_set(include_id=False)
        assert "__item_id__" not in fs.names
        assert len(fs) == 3

    def test_true_skill_array_aligned(self, small_synth):
        arr = small_synth.true_skill_array()
        assert len(arr) == small_synth.log.num_actions
