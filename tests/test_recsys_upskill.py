"""Tests for repro.recsys.upskill (the assembled recommender)."""

import numpy as np
import pytest

from repro.core.difficulty import generation_difficulty
from repro.exceptions import ConfigurationError, DataError
from repro.recsys.upskill import (
    Recommendation,
    RecommendQuery,
    UpskillConfig,
    UpskillRecommender,
)


@pytest.fixture
def recommender(fitted_tiny_model):
    difficulties = generation_difficulty(fitted_tiny_model, prior="empirical")
    return UpskillRecommender(fitted_tiny_model, difficulties)


class TestUpskillConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            UpskillConfig(window_low=1.0, window_high=0.0)
        with pytest.raises(ConfigurationError):
            UpskillConfig(interest_weight=1.5)
        with pytest.raises(ConfigurationError):
            UpskillConfig(decay=0.0)


class TestChallengeFit:
    def test_inside_window_full_credit(self, fitted_tiny_model):
        difficulties = {item: 2.0 for item in fitted_tiny_model.encoded.vocabulary("__item_id__")}
        rec = UpskillRecommender(
            fitted_tiny_model, difficulties, UpskillConfig(window_low=-0.5, window_high=0.5)
        )
        np.testing.assert_allclose(rec.challenge_fit(2), 1.0)

    def test_decays_outside_window(self, fitted_tiny_model):
        vocab = fitted_tiny_model.encoded.vocabulary("__item_id__")
        difficulties = {item: 3.0 for item in vocab}
        rec = UpskillRecommender(
            fitted_tiny_model,
            difficulties,
            UpskillConfig(window_low=-0.25, window_high=0.25, decay=2.0),
        )
        fit_at_own_level = rec.challenge_fit(3)[0]
        fit_far_below = rec.challenge_fit(1)[0]  # items 2 levels above a level-1 user
        assert fit_at_own_level == pytest.approx(1.0)
        assert fit_far_below < 0.05


class TestRecommend:
    def test_returns_k_unseen_items(self, recommender, fitted_tiny_model, tiny_log):
        recs = recommender.recommend("u0", k=4, log=tiny_log)
        assert len(recs) <= 4
        seen = tiny_log.sequence("u0").unique_items
        assert all(r.item not in seen for r in recs)
        assert all(isinstance(r, Recommendation) for r in recs)

    def test_scores_sorted(self, recommender, tiny_log):
        recs = recommender.recommend("u1", k=5, log=tiny_log)
        scores = [r.score for r in recs]
        assert scores == sorted(scores, reverse=True)

    def test_time_parameter(self, recommender, tiny_log):
        early = recommender.recommend("u0", time=-100.0, k=3, log=tiny_log)
        assert len(early) >= 1

    def test_exclude_seen_needs_log(self, recommender):
        with pytest.raises(ConfigurationError):
            recommender.recommend("u0", k=3)

    def test_include_seen_mode(self, fitted_tiny_model):
        difficulties = generation_difficulty(fitted_tiny_model)
        rec = UpskillRecommender(
            fitted_tiny_model, difficulties, UpskillConfig(exclude_seen=False)
        )
        recs = rec.recommend("u0", k=3)
        assert len(recs) == 3

    def test_k_validation(self, recommender, tiny_log):
        with pytest.raises(ConfigurationError):
            recommender.recommend("u0", k=0, log=tiny_log)

    def test_unknown_user(self, recommender, tiny_log):
        with pytest.raises(DataError):
            recommender.recommend("ghost", k=3, log=tiny_log)

    def test_missing_difficulties_rejected(self, fitted_tiny_model):
        with pytest.raises(DataError):
            UpskillRecommender(fitted_tiny_model, {"i0": 1.0})

    def test_challenge_window_steers_recommendations(self, fitted_tiny_model, tiny_log):
        """A challenge-only recommender must pick items nearer the user's
        level than an interest-only one, measured on estimated difficulty."""
        difficulties = generation_difficulty(fitted_tiny_model, prior="empirical")
        challenge_only = UpskillRecommender(
            fitted_tiny_model, difficulties, UpskillConfig(interest_weight=0.0)
        )
        interest_only = UpskillRecommender(
            fitted_tiny_model, difficulties, UpskillConfig(interest_weight=1.0)
        )
        user = "u0"
        level = int(fitted_tiny_model.skill_trajectory(user)[-1])
        gap = lambda recs: np.mean([abs(r.difficulty - level) for r in recs])  # noqa: E731
        challenge_gap = gap(challenge_only.recommend(user, k=3, log=tiny_log))
        interest_gap = gap(interest_only.recommend(user, k=3, log=tiny_log))
        assert challenge_gap <= interest_gap + 1e-9


class TestEdgeCases:
    def test_excluding_whole_catalog_yields_empty(self, recommender):
        """A user who has seen everything gets [], not an error."""
        recs = recommender.recommend_for_level(
            2, k=5, exclude=frozenset(recommender.items)
        )
        assert recs == []

    def test_all_items_outside_window_decay_ordering(self, fitted_tiny_model):
        """When nothing fits the window, nearer items still rank first."""
        vocab = fitted_tiny_model.encoded.vocabulary("__item_id__")
        # Every difficulty sits far above the window of a level-1 user,
        # strictly increasing with catalog position.
        difficulties = {item: 10.0 + pos for pos, item in enumerate(vocab)}
        rec = UpskillRecommender(
            fitted_tiny_model,
            difficulties,
            UpskillConfig(
                window_low=-0.25,
                window_high=0.25,
                interest_weight=0.0,
                exclude_seen=False,
            ),
        )
        recs = rec.recommend_for_level(1, k=len(vocab))
        assert len(recs) == len(vocab)
        assert all(r.challenge_fit < 1.0 for r in recs)
        diffs = [r.difficulty for r in recs]
        assert diffs == sorted(diffs)

    def test_interest_weight_zero_is_challenge_only(self, fitted_tiny_model):
        difficulties = generation_difficulty(fitted_tiny_model, prior="empirical")
        rec = UpskillRecommender(
            fitted_tiny_model,
            difficulties,
            UpskillConfig(interest_weight=0.0, exclude_seen=False),
        )
        for r in rec.recommend_for_level(2, k=5):
            assert r.score == pytest.approx(r.challenge_fit)

    def test_interest_weight_one_is_interest_only(self, fitted_tiny_model):
        difficulties = generation_difficulty(fitted_tiny_model, prior="empirical")
        rec = UpskillRecommender(
            fitted_tiny_model,
            difficulties,
            UpskillConfig(interest_weight=1.0, exclude_seen=False),
        )
        recs = rec.recommend_for_level(2, k=5)
        for r in recs:
            assert r.score == pytest.approx(r.interest)
        top_interest = float(np.max(fitted_tiny_model.item_probabilities(2)))
        assert recs[0].interest == pytest.approx(top_interest)

    def test_batch_matches_sequential_calls(self, recommender):
        """recommend_batch must reproduce recommend_for_level exactly."""
        queries = [
            RecommendQuery(level=1, k=4),
            RecommendQuery(level=2, k=3, exclude=frozenset({"i0", "i5"})),
            RecommendQuery(level=1, k=6, exclude=frozenset({"i1"})),
            RecommendQuery(level=3, k=2),
        ]
        batched = recommender.recommend_batch(queries)
        singles = [
            recommender.recommend_for_level(q.level, k=q.k, exclude=q.exclude)
            for q in queries
        ]
        assert batched == singles

    def test_batch_k_validation(self, recommender):
        with pytest.raises(ConfigurationError):
            recommender.recommend_batch([RecommendQuery(level=1, k=0)])
