"""Tests for the tracing layer: spans, context propagation, sinks, analysis.

Timing-sensitive behaviour uses injected fake clocks — nothing here
sleeps.  The serve-path integration (headers, WAL journaling, fold-in
linkage) lives in ``test_serve_trace.py``; this file covers the
:mod:`repro.obs.trace` machinery itself.
"""

from __future__ import annotations

import json
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.obs.trace import (
    TRACE_SCHEMA,
    SpanRecord,
    Tracer,
    configure_tracing,
    current_trace_id,
    get_tracer,
    load_trace_file,
    new_span_id,
    set_tracer,
    summarize_spans,
    use_tracer,
)
from repro.obs.trace import _format_attrs, _format_line


class FakeClock:
    """A manually advanced clock (works for both wall and monotonic)."""

    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def advance(self, seconds: float) -> None:
        self.now += seconds

    def __call__(self) -> float:
        return self.now


def _tracer(**kwargs) -> Tracer:
    kwargs.setdefault("enabled", True)
    return Tracer(**kwargs)


# ---------------------------------------------------------------------------
# Span lifecycle and context propagation
# ---------------------------------------------------------------------------


class TestSpans:
    def test_span_times_the_body(self):
        clock, wall = FakeClock(), FakeClock(1000.0)
        tracer = _tracer(clock=clock, wall=wall)
        with tracer.span("stage", size=3):
            clock.advance(0.25)
        (span,) = tracer.export()
        assert span["schema"] == TRACE_SCHEMA
        assert span["name"] == "stage"
        assert span["ts"] == 1000.0
        assert span["ms"] == pytest.approx(250.0)
        assert span["attrs"] == {"size": 3}
        assert span["parent"] is None

    def test_nested_spans_share_trace_and_link_parents(self):
        tracer = _tracer(clock=FakeClock(), wall=FakeClock())
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.trace == outer.trace
                assert inner.span != outer.span
        inner_json, outer_json = tracer.export()  # inner closes first
        assert inner_json["name"] == "inner"
        assert inner_json["parent"] == outer_json["span"]
        assert outer_json["parent"] is None
        assert inner_json["trace"] == outer_json["trace"]

    def test_sibling_roots_get_distinct_traces(self):
        tracer = _tracer()
        with tracer.span("a") as a:
            pass
        with tracer.span("b") as b:
            pass
        assert a.trace != b.trace
        assert len(a.trace) == 16 and len(a.span) == 16

    def test_exception_records_error_attr_and_propagates(self):
        tracer = _tracer()
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        (span,) = tracer.export()
        assert span["attrs"]["error"] == "ValueError"

    def test_set_updates_attrs_mid_span(self):
        tracer = _tracer()
        with tracer.span("request", path="/predict") as handle:
            handle.set(status=200)
        (span,) = tracer.export()
        assert span["attrs"] == {"path": "/predict", "status": 200}

    def test_context_restored_after_span(self):
        tracer = _tracer()
        with use_tracer(tracer):
            assert current_trace_id() is None
            with tracer.span("outer") as outer:
                assert current_trace_id() == outer.trace
            assert current_trace_id() is None

    def test_disabled_tracer_is_inert(self):
        tracer = Tracer(enabled=False)
        with tracer.span("ignored") as handle:
            handle.set(k=1)
        assert handle.trace is None
        assert tracer.export() == []
        assert tracer.capture() is None
        assert tracer.snapshot() is None
        assert tracer.current_trace_id() is None
        tracer.record("also-ignored")
        assert tracer.export() == []


class TestHandOff:
    def test_capture_attach_joins_the_trace(self):
        tracer = _tracer()
        with tracer.span("producer") as producer:
            captured = tracer.capture()
        assert captured.trace == producer.trace
        assert captured.span == producer.span
        with tracer.attach(captured.trace, captured.span):
            with tracer.span("consumer"):
                pass
        spans = tracer.export()
        consumer = next(s for s in spans if s["name"] == "consumer")
        assert consumer["trace"] == producer.trace
        assert consumer["parent"] == producer.span

    def test_snapshot_matches_capture_fields(self):
        clock, wall = FakeClock(5.0), FakeClock(2000.0)
        tracer = _tracer(clock=clock, wall=wall)
        with tracer.span("work") as handle:
            snap = tracer.snapshot()
        assert snap == (handle.trace, handle.span, 2000.0, 5.0)

    def test_record_with_explicit_ids_and_timing(self):
        tracer = _tracer(wall=FakeClock(100.0))
        span_id = new_span_id()
        tracer.record(
            "queue.wait", trace="t" * 16, span=span_id, parent="p" * 16,
            ts=42.0, duration=0.5, depth=7,
        )
        (span,) = tracer.export()
        assert span["span"] == span_id
        assert span["trace"] == "t" * 16
        assert span["parent"] == "p" * 16
        assert span["ts"] == 42.0
        assert span["ms"] == pytest.approx(500.0)
        assert span["attrs"] == {"depth": 7}

    def test_record_falls_back_to_ambient_context(self):
        tracer = _tracer()
        with tracer.span("root") as root:
            tracer.record("point.event")
        spans = tracer.export()
        event = next(s for s in spans if s["name"] == "point.event")
        assert event["trace"] == root.trace
        assert event["parent"] == root.span
        assert event["ms"] == 0.0
        # Deferred ids are assigned at flush: present, unique, well-formed.
        assert isinstance(event["span"], str) and len(event["span"]) == 16
        assert event["span"] != root.span


# ---------------------------------------------------------------------------
# Head sampling
# ---------------------------------------------------------------------------


class TestSampling:
    def test_sample_one_always_samples(self):
        tracer = _tracer(sample=1.0)
        assert all(tracer.sampled() for _ in range(50))

    def test_sample_zero_never_samples_but_stays_enabled(self):
        tracer = _tracer(sample=0.0)
        assert not any(tracer.sampled() for _ in range(50))
        assert tracer.enabled

    def test_sample_clamped_to_unit_interval(self):
        assert _tracer(sample=7.0).sample == 1.0
        assert _tracer(sample=-1.0).sample == 0.0

    def test_disabled_tracer_never_samples(self):
        assert Tracer(enabled=False, sample=1.0).sampled() is False

    def test_trace_only_scope_propagates_id_without_spans(self):
        tracer = _tracer(sample=0.0)
        with use_tracer(tracer):
            with tracer.trace_only() as scope:
                # The id is visible to headers/logs/WAL journaling...
                assert current_trace_id() == scope.trace
                assert len(scope.trace) == 16
                # ...but there is no active *span*: hand-offs see nothing,
                assert tracer.capture() is None
                assert tracer.snapshot() is None
                # the handle's span is falsy for span-gated call sites,
                assert not scope.span
                scope.set(status=200)  # and attrs go nowhere, harmlessly
            assert current_trace_id() is None
        assert tracer.export() == []

    def test_trace_only_on_disabled_tracer_is_noop(self):
        tracer = Tracer(enabled=False)
        with tracer.trace_only() as scope:
            assert scope.trace is None
        assert tracer.export() == []


# ---------------------------------------------------------------------------
# Ring, sink, flush, close
# ---------------------------------------------------------------------------


class TestStorage:
    def test_ring_keeps_most_recent_spans(self):
        tracer = _tracer(ring_size=4)
        for index in range(10):
            tracer.record(f"event.{index}", trace="t" * 16)
        names = [span["name"] for span in tracer.export()]
        assert names == ["event.6", "event.7", "event.8", "event.9"]

    def test_sink_file_holds_every_span_after_close(self, tmp_path):
        out = tmp_path / "spans.jsonl"
        tracer = _tracer(out=out)
        with tracer.span("a"):
            pass
        tracer.record("b", trace="t" * 16, note="hello")
        tracer.close()
        spans = load_trace_file(out)
        assert [span["name"] for span in spans] == ["a", "b"]
        assert spans[1]["attrs"] == {"note": "hello"}

    def test_flush_is_synchronous_and_repeatable(self, tmp_path):
        out = tmp_path / "spans.jsonl"
        tracer = _tracer(out=out)
        tracer.record("first", trace="t" * 16)
        tracer.flush()
        assert len(load_trace_file(out)) == 1
        tracer.record("second", trace="t" * 16)
        tracer.flush()
        tracer.flush()  # idempotent on an empty buffer
        assert [s["name"] for s in load_trace_file(out)] == ["first", "second"]
        tracer.close()

    def test_record_after_close_does_not_deadlock(self, tmp_path):
        out = tmp_path / "spans.jsonl"
        tracer = _tracer(out=out)
        tracer.record("before", trace="t" * 16)
        tracer.close()
        # A straggler span after close must neither hang flush() nor be
        # lost from the ring (the file handle is gone, the ring is not).
        tracer.record("after", trace="t" * 16)
        tracer.flush()
        assert [s["name"] for s in tracer.export()] == ["before", "after"]

    def test_concurrent_recorders_lose_nothing(self, tmp_path):
        out = tmp_path / "spans.jsonl"
        tracer = _tracer(out=out)
        per_thread = 500

        def hammer(worker: int) -> None:
            for index in range(per_thread):
                tracer.record(f"w{worker}", trace="t" * 16, i=index)

        with ThreadPoolExecutor(max_workers=4) as pool:
            list(pool.map(hammer, range(4)))
        tracer.close()
        spans = load_trace_file(out)
        assert len(spans) == 4 * per_thread
        # Deferred span ids must come out unique even across threads.
        assert len({span["span"] for span in spans}) == len(spans)

    def test_dump_writes_ring_to_jsonl(self, tmp_path):
        tracer = _tracer()
        with tracer.span("only"):
            pass
        target = tmp_path / "dumped" / "spans.jsonl"
        assert tracer.dump(target) == 1
        assert load_trace_file(target)[0]["name"] == "only"


class TestGlobals:
    def test_set_tracer_swaps_and_returns_previous(self):
        original = get_tracer()
        replacement = _tracer()
        assert set_tracer(replacement) is original
        try:
            assert get_tracer() is replacement
        finally:
            set_tracer(original)

    def test_configure_tracing_installs_and_respects_sample(self, tmp_path):
        original = get_tracer()
        try:
            tracer = configure_tracing(out=tmp_path / "t.jsonl", sample=0.25)
            assert get_tracer() is tracer
            assert tracer.enabled and tracer.sample == 0.25
            tracer.close()
        finally:
            set_tracer(original)


# ---------------------------------------------------------------------------
# Lean serialization: byte parity with json.dumps
# ---------------------------------------------------------------------------


class TestSinkSerialization:
    def _parity(self, record: SpanRecord) -> None:
        assert json.loads(record.to_line()) == record.to_json()
        # The hand-formatted attrs fragment is byte-identical to what
        # json.dumps(…, sort_keys=True) would emit for the same mapping.
        if record.attrs:
            fragment = json.dumps(dict(record.attrs), sort_keys=True)
            assert record.to_line().endswith(f', "attrs": {fragment}}}')

    def test_simple_record_matches_json_dumps(self):
        self._parity(
            SpanRecord(
                trace="a" * 16, span="b" * 16, parent=None,
                name="serve.request", ts=1712000000.5, ms=3.25,
                attrs={"path": "/predict", "status": 200, "hit": True,
                       "ratio": 0.125, "empty": ""},
            )
        )

    def test_parented_attr_free_record_matches(self):
        self._parity(
            SpanRecord(
                trace="a" * 16, span="b" * 16, parent="c" * 16,
                name="serve.serialize", ts=0.0, ms=0.0,
            )
        )

    def test_fallback_attrs_still_parse_identically(self):
        # Escapes, non-ASCII, containers, NaN-free floats only — each
        # forces the json.dumps fallback but must parse to the same dict.
        for attrs in (
            {"msg": 'quote " inside'},
            {"msg": "back\\slash"},
            {"msg": "unïcode"},
            {"msg": "tab\there"},
            {"traces": ["x" * 16, "y" * 16]},
            {"nested": {"k": 1}},
        ):
            record = SpanRecord(
                trace="a" * 16, span="b" * 16, parent=None,
                name="n", ts=1.0, ms=2.0, attrs=attrs,
            )
            assert json.loads(record.to_line()) == record.to_json()

    def test_pathological_name_falls_back(self):
        record = SpanRecord(
            trace="a" * 16, span="b" * 16, parent=None,
            name='we"ird\\name', ts=1.0, ms=2.0, attrs={"k": 1},
        )
        assert json.loads(record.to_line()) == record.to_json()

    def test_format_attrs_bails_on_nonfinite_floats(self):
        assert _format_attrs({"v": float("nan")}) is None
        assert _format_attrs({"v": float("inf")}) is None
        assert _format_attrs({"v": 1.5}) == '{"v": 1.5}'

    def test_format_attrs_sorts_keys(self):
        assert _format_attrs({"b": 2, "a": 1}) == json.dumps(
            {"b": 2, "a": 1}, sort_keys=True
        )

    def test_format_line_roundtrips_through_loader(self, tmp_path):
        line = _format_line("a" * 16, "b" * 16, None, "x.y", 1.5, 2.5, None)
        path = tmp_path / "one.jsonl"
        path.write_text(line + "\n", encoding="utf-8")
        (span,) = load_trace_file(path)
        assert span["name"] == "x.y" and span["parent"] is None


# ---------------------------------------------------------------------------
# Analysis: summarize_spans and load_trace_file
# ---------------------------------------------------------------------------


def _span(name, ms, trace="t1", span="s?", parent=None):
    return {
        "schema": TRACE_SCHEMA, "trace": trace, "span": span,
        "parent": parent, "name": name, "ts": 0.0, "ms": ms,
    }


class TestAnalysis:
    def test_summary_stages_and_critical_path(self):
        spans = [
            _span("serve.request", 10.0, span="root1"),
            _span("serve.batch.flush", 7.0, span="flush1", parent="root1"),
            _span("serve.serialize", 1.0, span="ser1", parent="root1"),
            _span("serve.request", 2.0, trace="t2", span="root2"),
        ]
        summary = summarize_spans(spans)
        assert summary["schema"] == "repro-trace-summary/1"
        assert summary["spans"] == 4
        assert summary["traces"] == {"count": 2, "roots": 2}
        assert list(summary["stages"]) == [
            "serve.request", "serve.batch.flush", "serve.serialize",
        ]  # sorted by total time descending
        assert summary["stages"]["serve.request"]["count"] == 2
        # Critical path: slowest root, then most expensive child chain.
        path = [node["name"] for node in summary["critical_path"]]
        assert path == ["serve.request", "serve.batch.flush"]
        assert summary["critical_path"][0]["self_ms"] == pytest.approx(2.0)

    def test_outliers_are_slowest_roots_at_or_above_p95(self):
        spans = [
            _span("r", float(ms), trace=f"t{ms}", span=f"s{ms}")
            for ms in range(1, 21)
        ]
        summary = summarize_spans(spans, outliers=3)
        assert [row["ms"] for row in summary["outliers"]] == [20.0, 19.0]

    def test_empty_span_list(self):
        summary = summarize_spans([])
        assert summary["spans"] == 0
        assert summary["critical_path"] == []
        assert summary["outliers"] == []

    def test_load_trace_file_rejects_garbage(self, tmp_path):
        bad_json = tmp_path / "bad.jsonl"
        bad_json.write_text("not json\n", encoding="utf-8")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_trace_file(bad_json)
        wrong_schema = tmp_path / "schema.jsonl"
        wrong_schema.write_text('{"schema": "other/9"}\n', encoding="utf-8")
        with pytest.raises(ValueError, match="expected schema"):
            load_trace_file(wrong_schema)

    def test_load_trace_file_skips_blank_lines(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        record = SpanRecord(
            trace="a" * 16, span="b" * 16, parent=None, name="n", ts=0.0, ms=1.0
        )
        path.write_text("\n" + record.to_line() + "\n\n", encoding="utf-8")
        assert len(load_trace_file(path)) == 1
