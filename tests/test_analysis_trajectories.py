"""Tests for repro.analysis.trajectories and calibration."""

import numpy as np
import pytest

from repro.analysis.calibration import difficulty_calibration
from repro.analysis.trajectories import (
    level_dwell_times,
    mean_level_curve,
    reach_rates,
    summarize_trajectories,
)
from repro.core.difficulty import generation_difficulty
from repro.exceptions import ConfigurationError, DataError


class TestDwellTimes:
    def test_runs_partition_each_trajectory(self, fitted_tiny_model):
        dwell = level_dwell_times(fitted_tiny_model)
        total = sum(sum(runs) for runs in dwell.values())
        expected = sum(
            len(fitted_tiny_model.skill_trajectory(u))
            for u in fitted_tiny_model.assignments
        )
        assert total == expected

    def test_monotone_model_visits_each_level_once_per_user(self, fitted_tiny_model):
        dwell = level_dwell_times(fitted_tiny_model)
        num_users = len(fitted_tiny_model.assignments)
        for runs in dwell.values():
            assert len(runs) <= num_users


class TestReachRates:
    def test_non_increasing_and_bounded(self, fitted_tiny_model):
        rates = reach_rates(fitted_tiny_model)
        assert rates[0] == 1.0  # everyone reaches level 1
        assert np.all(np.diff(rates) <= 1e-12)
        assert np.all((0 <= rates) & (rates <= 1))


class TestMeanLevelCurve:
    def test_monotone_for_monotone_trainer(self, fitted_tiny_model):
        curve = mean_level_curve(fitted_tiny_model, num_points=8)
        assert len(curve) == 8
        assert np.all(np.diff(curve) >= -1e-9)

    def test_endpoints(self, fitted_tiny_model):
        curve = mean_level_curve(fitted_tiny_model, num_points=5)
        firsts = np.mean(
            [fitted_tiny_model.skill_trajectory(u)[0] for u in fitted_tiny_model.assignments]
        )
        lasts = np.mean(
            [fitted_tiny_model.skill_trajectory(u)[-1] for u in fitted_tiny_model.assignments]
        )
        assert curve[0] == pytest.approx(firsts)
        assert curve[-1] == pytest.approx(lasts)

    def test_validation(self, fitted_tiny_model):
        with pytest.raises(ConfigurationError):
            mean_level_curve(fitted_tiny_model, num_points=1)


class TestSummary:
    def test_bundles_everything(self, fitted_tiny_model):
        summary = summarize_trajectories(fitted_tiny_model, curve_points=6)
        assert summary.num_users == 3
        assert 1.0 <= summary.mean_final_level <= 3.0
        assert len(summary.reach_rates) == 3
        assert len(summary.level_curve) == 6
        assert summary.curve_is_non_decreasing


class TestCalibration:
    def test_curve_shape(self, fitted_tiny_model, tiny_log):
        estimates = generation_difficulty(fitted_tiny_model, prior="empirical")
        curve = difficulty_calibration(fitted_tiny_model, tiny_log, estimates, num_bins=3)
        assert len(curve.bins) == 3
        assert sum(b.num_actions for b in curve.bins) == tiny_log.num_actions

    def test_planted_data_is_rank_calibrated(self):
        """On synthetic data with strong signal, harder bins must attract
        more skilled selectors."""
        from repro.core.training import fit_skill_model
        from repro.synth import SyntheticConfig, generate_synthetic

        ds = generate_synthetic(SyntheticConfig(num_users=120, num_items=600, seed=9))
        model = fit_skill_model(
            ds.log, ds.catalog, ds.feature_set, 5, init_min_actions=30, max_iterations=20
        )
        estimates = generation_difficulty(model, prior="empirical")
        curve = difficulty_calibration(model, ds.log, estimates, num_bins=5)
        assert curve.monotone_fraction >= 0.75
        assert curve.skill_span > 1.0

    def test_missing_estimate_rejected(self, fitted_tiny_model, tiny_log):
        with pytest.raises(DataError):
            difficulty_calibration(fitted_tiny_model, tiny_log, {"i0": 1.0})

    def test_validation(self, fitted_tiny_model, tiny_log):
        estimates = generation_difficulty(fitted_tiny_model)
        with pytest.raises(ConfigurationError):
            difficulty_calibration(fitted_tiny_model, tiny_log, estimates, num_bins=1)
