"""Tests for repro.data.actions."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.data.actions import Action, ActionLog, ActionSequence
from repro.exceptions import DataError


class TestAction:
    def test_fields(self):
        action = Action(time=1.5, user="u", item="i")
        assert action.time == 1.5
        assert action.user == "u"
        assert action.item == "i"
        assert action.rating is None

    def test_rating_carried(self):
        assert Action(time=0.0, user="u", item="i", rating=4.5).rating == 4.5

    def test_non_numeric_time_rejected(self):
        with pytest.raises(DataError):
            Action(time="yesterday", user="u", item="i")

    def test_frozen(self):
        action = Action(time=0.0, user="u", item="i")
        with pytest.raises(AttributeError):
            action.time = 1.0


class TestActionSequence:
    def test_sorts_by_time(self):
        actions = [Action(time=t, user="u", item=f"i{t}") for t in (3.0, 1.0, 2.0)]
        seq = ActionSequence("u", actions)
        assert seq.times == (1.0, 2.0, 3.0)

    def test_presorted_validation(self):
        bad = [Action(time=2.0, user="u", item="a"), Action(time=1.0, user="u", item="b")]
        with pytest.raises(DataError):
            ActionSequence("u", bad, presorted=True)

    def test_wrong_user_rejected(self):
        with pytest.raises(DataError):
            ActionSequence("u", [Action(time=0.0, user="other", item="i")])

    def test_equal_times_allowed(self):
        seq = ActionSequence(
            "u",
            [Action(time=1.0, user="u", item="a"), Action(time=1.0, user="u", item="b")],
            presorted=True,
        )
        assert len(seq) == 2

    def test_items_and_unique_items(self):
        seq = ActionSequence(
            "u",
            [
                Action(time=0.0, user="u", item="a"),
                Action(time=1.0, user="u", item="b"),
                Action(time=2.0, user="u", item="a"),
            ],
        )
        assert seq.items == ("a", "b", "a")
        assert seq.unique_items == frozenset({"a", "b"})

    def test_indexing_and_iteration(self):
        seq = ActionSequence("u", [Action(time=float(t), user="u", item="x") for t in range(3)])
        assert seq[0].time == 0.0
        assert [a.time for a in seq] == [0.0, 1.0, 2.0]

    def test_without_index(self):
        seq = ActionSequence("u", [Action(time=float(t), user="u", item=f"i{t}") for t in range(4)])
        shorter = seq.without_index(1)
        assert shorter.items == ("i0", "i2", "i3")
        assert len(seq) == 4  # original untouched

    def test_without_index_negative(self):
        seq = ActionSequence("u", [Action(time=float(t), user="u", item=f"i{t}") for t in range(3)])
        assert seq.without_index(-1).items == ("i0", "i1")

    def test_without_index_out_of_range(self):
        seq = ActionSequence("u", [Action(time=0.0, user="u", item="i")])
        with pytest.raises(DataError):
            seq.without_index(5)


class TestActionLog:
    def test_from_actions_groups_users(self):
        actions = [
            Action(time=0.0, user="a", item="x"),
            Action(time=0.0, user="b", item="y"),
            Action(time=1.0, user="a", item="z"),
        ]
        log = ActionLog.from_actions(actions)
        assert log.num_users == 2
        assert log.num_actions == 3
        assert log.sequence("a").items == ("x", "z")

    def test_duplicate_user_rejected(self):
        seqs = [
            ActionSequence("u", [Action(time=0.0, user="u", item="a")]),
            ActionSequence("u", [Action(time=1.0, user="u", item="b")]),
        ]
        with pytest.raises(DataError):
            ActionLog(seqs)

    def test_unknown_user(self, tiny_log):
        with pytest.raises(DataError):
            tiny_log.sequence("nobody")

    def test_contains(self, tiny_log):
        assert "u0" in tiny_log
        assert "ghost" not in tiny_log

    def test_selected_items(self):
        log = ActionLog.from_actions(
            [Action(time=0.0, user="u", item="a"), Action(time=1.0, user="u", item="b")]
        )
        assert log.selected_items == frozenset({"a", "b"})

    def test_item_counts_vs_user_counts(self):
        actions = [
            Action(time=0.0, user="a", item="x"),
            Action(time=1.0, user="a", item="x"),
            Action(time=0.0, user="b", item="x"),
        ]
        log = ActionLog.from_actions(actions)
        assert log.item_counts() == {"x": 3}
        assert log.item_user_counts() == {"x": 2}

    def test_restrict_users(self, tiny_log):
        restricted = tiny_log.restrict_users(["u0"])
        assert restricted.users == ("u0",)
        assert restricted.num_actions == len(tiny_log.sequence("u0"))

    def test_restrict_items_drops_empty_users(self):
        actions = [
            Action(time=0.0, user="a", item="x"),
            Action(time=0.0, user="b", item="y"),
        ]
        log = ActionLog.from_actions(actions).restrict_items(["x"])
        assert log.users == ("a",)

    def test_earliest_time(self):
        actions = [
            Action(time=5.0, user="a", item="x"),
            Action(time=2.0, user="b", item="y"),
        ]
        assert ActionLog.from_actions(actions).earliest_time() == 2.0

    def test_earliest_time_empty(self):
        with pytest.raises(DataError):
            ActionLog([]).earliest_time()

    def test_actions_iterates_everything(self, tiny_log):
        assert sum(1 for _ in tiny_log.actions()) == tiny_log.num_actions


@given(
    times=st.lists(
        st.floats(min_value=0, max_value=1e6, allow_nan=False), min_size=1, max_size=30
    )
)
def test_sequence_always_sorted(times):
    """Property: construction sorts arbitrary action times."""
    seq = ActionSequence("u", [Action(time=t, user="u", item="i") for t in times])
    assert np.all(np.diff(seq.times) >= 0)
