"""Tests for repro.data.splits."""

import numpy as np
import pytest

from repro.data.actions import Action, ActionLog
from repro.data.splits import (
    holdout_fraction,
    holdout_last_position,
    holdout_random_position,
)
from repro.exceptions import ConfigurationError


def _log(lengths):
    actions = []
    for u, n in enumerate(lengths):
        for t in range(n):
            actions.append(Action(time=float(t), user=f"u{u}", item=f"i{u}_{t}"))
    return ActionLog.from_actions(actions)


class TestHoldoutFraction:
    def test_counts_conserved(self):
        log = _log([20, 30, 40])
        train, held = holdout_fraction(log, 0.1, np.random.default_rng(0))
        assert train.num_actions + len(held) == log.num_actions

    def test_every_user_keeps_training_actions(self):
        log = _log([10, 10])
        train, held = holdout_fraction(log, 0.5, np.random.default_rng(0))
        for seq in train:
            assert len(seq) >= 1
        tested_users = {h.action.user for h in held}
        assert tested_users <= set(train.users)

    def test_single_action_users_untested(self):
        log = _log([1, 10])
        train, held = holdout_fraction(log, 0.5, np.random.default_rng(0))
        assert all(h.action.user != "u0" for h in held)
        assert train.sequence("u0").items == ("i0_0",)

    def test_bad_fraction(self):
        log = _log([5])
        for fraction in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ConfigurationError):
                holdout_fraction(log, fraction, np.random.default_rng(0))

    def test_deterministic_given_rng(self):
        log = _log([20, 20])
        _, held1 = holdout_fraction(log, 0.2, np.random.default_rng(7))
        _, held2 = holdout_fraction(log, 0.2, np.random.default_rng(7))
        assert [h.action for h in held1] == [h.action for h in held2]


class TestHoldoutOne:
    def test_random_position_one_per_user(self):
        log = _log([5, 8, 12])
        train, held = holdout_random_position(log, np.random.default_rng(1))
        assert len(held) == 3
        assert train.num_actions == log.num_actions - 3

    def test_last_position_holds_final_action(self):
        log = _log([4, 6])
        train, held = holdout_last_position(log)
        for h in held:
            assert h.position == h.sequence_length - 1
        assert train.sequence("u0").times == (0.0, 1.0, 2.0)

    def test_short_sequences_skipped(self):
        log = _log([1, 5])
        _, held = holdout_last_position(log)
        assert {h.action.user for h in held} == {"u1"}

    def test_held_metadata(self):
        log = _log([5])
        _, held = holdout_last_position(log)
        assert held[0].sequence_length == 5
        assert held[0].action.item == "i0_4"

    def test_train_sequences_stay_sorted(self):
        log = _log([10])
        train, _ = holdout_random_position(log, np.random.default_rng(3))
        times = train.sequence("u0").times
        assert all(a <= b for a, b in zip(times, times[1:]))
