"""Prefork supervisor: shared-memory generations, chaos, and drain.

These tests exercise the full fork path (real worker processes, real
``SO_REUSEPORT`` sockets, real ``/dev/shm`` segments), so every fixture
is careful about cleanup: the supervisor's shutdown must leave zero
shared-memory entries behind, and several tests assert exactly that.

The chaos cases lean on :mod:`repro.testing.faults`:

- ``kill_prefork_worker`` — SIGKILL mid-traffic; the supervisor must
  respawn and no request on the surviving workers may fail;
- ``prefork_reattach_crash`` — a worker dies *inside* the hot-swap
  re-attach window; the old generation must survive until every live
  worker acks the new one, and the fleet must converge afterwards.
"""

from __future__ import annotations

import http.client
import importlib.util
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.core.parallel import SHM_PREFIX
from repro.core.serialize import save_model
from repro.core.training import fit_skill_model
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.serve import (
    ModelState,
    PreforkConfig,
    PreforkSupervisor,
    ServeConfig,
    ServerThread,
    SkillServer,
)
from repro.serve.prefork import _Generation, _Tenant, WorkerRuntime
from repro.testing.faults import kill_prefork_worker, prefork_reattach_crash

_REPO = Path(__file__).resolve().parent.parent
_CHECKER_PATH = _REPO / "tools" / "check_obs_output.py"


@pytest.fixture(scope="module")
def checker():
    spec = importlib.util.spec_from_file_location("check_obs_output", _CHECKER_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _request(host, port, method, path, body=None, timeout=30):
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        payload = json.dumps(body).encode("utf-8") if body is not None else None
        headers = {"Content-Type": "application/json"} if payload else {}
        conn.request(method, path, payload, headers)
        response = conn.getresponse()
        return response.status, response.read(), dict(response.getheaders())
    finally:
        conn.close()


def _model_segments(pid: int) -> list[str]:
    """Live /dev/shm model segments published by process ``pid``."""
    prefix = f"{SHM_PREFIX}model_{pid}_"
    try:
        return [name for name in os.listdir("/dev/shm") if name.startswith(prefix)]
    except OSError:  # pragma: no cover - non-tmpfs platforms
        return []


class _Prefork:
    """A supervised fleet on a background thread, torn down hard."""

    def __init__(self, tenants, run_dir, *, workers=2, **config_kwargs):
        config_kwargs.setdefault("poll_seconds", 0.2)
        config_kwargs.setdefault("respawn_base_seconds", 0.05)
        self.supervisor = PreforkSupervisor(
            tenants,
            PreforkConfig(workers=workers, run_dir=run_dir, **config_kwargs),
            ServeConfig(port=0, max_wait_ms=0.5, poll_seconds=0.1),
        )
        self.host, self.port = self.supervisor.start()
        self._thread = threading.Thread(
            target=self.supervisor.serve_forever, daemon=True
        )
        self._thread.start()
        self.supervisor.wait_ready()

    def stop(self):
        self.supervisor.request_stop()
        self._thread.join(timeout=60)
        self.supervisor.stop()  # idempotent; covers a wedged thread


@pytest.fixture
def alpha_prefix(fitted_tiny_model, tmp_path):
    prefix = tmp_path / "alpha"
    save_model(fitted_tiny_model, prefix)
    return prefix


@pytest.fixture
def next_model(tiny_log, tiny_catalog, tiny_feature_set):
    """What the trainer lands mid-flight: same data, fewer levels."""
    return fit_skill_model(
        tiny_log,
        tiny_catalog,
        tiny_feature_set.with_id_feature(),
        num_levels=2,
        init_min_actions=5,
        max_iterations=20,
    )


class _Traffic(threading.Thread):
    """Closed-loop request driver that survives worker churn.

    ``SO_REUSEPORT`` hashes connections to workers; a SIGKILLed worker
    takes its accept queue's pending connections with it.  Those show up
    as *connection-level* errors (reset/refused) and are retried — the
    chaos criterion is zero **HTTP-level** failures, i.e. no request
    that reached a worker may produce a non-200.
    """

    def __init__(self, host, port, body):
        super().__init__(daemon=True)
        self.host, self.port, self.body = host, port, body
        self.stop_event = threading.Event()
        self.ok = 0
        self.http_failures: list[int] = []
        self.retries = 0
        self.versions: set[int] = set()

    def run(self):
        while not self.stop_event.is_set():
            try:
                status, raw, _ = _request(
                    self.host, self.port, "POST", "/predict", self.body, timeout=10
                )
            except (ConnectionError, OSError):
                self.retries += 1
                continue
            if status == 200:
                self.ok += 1
                self.versions.add(json.loads(raw)["model_version"])
            else:
                self.http_failures.append(status)

    def finish(self):
        self.stop_event.set()
        self.join(timeout=30)


def _live_worker_pids(run_dir) -> set[int]:
    pids = set()
    for reg in WorkerRuntime(0, run_dir).peers():
        pid = reg.get("pid")
        if isinstance(pid, int):
            try:
                os.kill(pid, 0)
            except OSError:
                continue
            pids.add(pid)
    return pids


# ------------------------------------------------------------ happy path


class TestPreforkServing:
    def test_two_workers_one_copy_identical_answers(
        self, alpha_prefix, tmp_path, checker
    ):
        with use_registry(MetricsRegistry()):
            fleet = _Prefork({"default": alpha_prefix}, tmp_path / "run")
            try:
                body = {"user": "u0", "time": 3.0, "k": 3}
                seen_workers: set[str] = set()
                bodies: set[bytes] = set()
                for _ in range(300):
                    status, raw, headers = _request(
                        fleet.host, fleet.port, "POST", "/predict", body
                    )
                    assert status == 200
                    seen_workers.add(headers["X-Serve-Worker"])
                    bodies.add(raw)
                    if len(seen_workers) == 2 and len(bodies) >= 1:
                        break
                # Kernel SO_REUSEPORT balancing reached both workers ...
                assert seen_workers == {"0", "1"}
                # ... and every answer, whichever worker served it, was
                # byte-identical (satellite 4: parity across workers).
                assert len(bodies) == 1

                # Parity vs the single-process server on the same artifact.
                with use_registry(MetricsRegistry()):
                    solo = ServerThread(
                        SkillServer(
                            ModelState(alpha_prefix),
                            ServeConfig(port=0, max_wait_ms=0.5),
                        )
                    )
                    solo_host, solo_port = solo.start()
                    try:
                        status, solo_raw, _ = _request(
                            solo_host, solo_port, "POST", "/predict", body
                        )
                    finally:
                        solo.stop()
                assert status == 200
                assert bodies == {solo_raw}

                # One tenant, N workers, exactly one physical model copy.
                assert len(_model_segments(os.getpid())) == 1

                # Aggregated /metrics: schema-valid, with the fleet gauges.
                status, raw, _ = _request(fleet.host, fleet.port, "GET", "/metrics")
                assert status == 200
                payload = json.loads(raw)
                assert checker.check_metrics(payload) == []
                assert checker.check_required_metrics(
                    payload, ["serve.prefork.workers"]
                ) == []
                assert payload["gauges"]["serve.prefork.workers"] == 2.0
                assert payload["gauges"]["serve.prefork.configured"] == 2.0
            finally:
                fleet.stop()
        # Shutdown unlinked every generation.
        assert _model_segments(os.getpid()) == []

    def test_hot_swap_mid_traffic_zero_failures(
        self, alpha_prefix, next_model, tmp_path
    ):
        with use_registry(MetricsRegistry()):
            fleet = _Prefork({"default": alpha_prefix}, tmp_path / "run")
            traffic = _Traffic(
                fleet.host, fleet.port, {"user": "u1", "time": 4.0, "k": 3}
            )
            try:
                traffic.start()
                deadline = time.monotonic() + 5
                while traffic.ok < 20 and time.monotonic() < deadline:
                    time.sleep(0.02)
                assert traffic.ok >= 1

                # The trainer lands a new artifact pair mid-traffic.
                save_model(next_model, alpha_prefix)

                # The fleet converges: both workers serve generation 2 and
                # the parent retires generation 1 once both have acked.
                deadline = time.monotonic() + 30
                while time.monotonic() < deadline:
                    if (
                        2 in traffic.versions
                        and len(_model_segments(os.getpid())) == 1
                    ):
                        break
                    time.sleep(0.05)
                assert 2 in traffic.versions
                # Exactly one live generation after the swap.
                assert len(_model_segments(os.getpid())) == 1
            finally:
                traffic.finish()
                fleet.stop()
        # Zero failed requests across the whole swap.
        assert traffic.http_failures == []
        assert traffic.versions <= {1, 2}
        assert _model_segments(os.getpid()) == []


# ------------------------------------------------------------------ GC


class _FakeSegment:
    def __init__(self):
        self.unlinked = False

    def close(self):
        pass

    def unlink(self):
        self.unlinked = True


class TestGenerationGc:
    def test_gc_waits_for_every_live_ack(self, alpha_prefix, tmp_path):
        """Deterministic replay of the ack handshake, no processes.

        Registration files are the ground truth the GC trusts; this
        writes them by hand to pin the policy: the old generation lives
        while any live worker still acks it, dead workers' stale files
        are ignored, and a worker that never attached the tenant does
        not gate it.
        """
        run_dir = tmp_path / "run"
        (run_dir / "workers").mkdir(parents=True)
        supervisor = PreforkSupervisor(
            {"default": alpha_prefix},
            PreforkConfig(workers=2, run_dir=run_dir),
            ServeConfig(port=0),
        )
        old, new = _FakeSegment(), _FakeSegment()
        tenant = supervisor._tenants["default"]
        tenant.generations = [
            _Generation(1, old, {}),
            _Generation(2, new, {}),
        ]

        def write_reg(index, pid, generations):
            (run_dir / "workers" / f"{index}.json").write_text(
                json.dumps(
                    {
                        "worker": index,
                        "pid": pid,
                        "admin_port": 1,
                        "generations": generations,
                    }
                ),
                "utf-8",
            )

        me = os.getpid()
        # A dead worker's stale ack of generation 1 must not pin it.
        reaped = subprocess.Popen([sys.executable, "-c", "pass"])
        reaped.wait()
        write_reg(7, reaped.pid, {"default": 1})
        # A live worker that never attached this tenant does not gate it.
        write_reg(2, me, {})

        write_reg(0, me, {"default": 1})
        write_reg(1, me, {"default": 2})
        supervisor._gc_generations()
        assert not old.unlinked  # worker 0 still reads generation 1

        write_reg(0, me, {"default": 2})
        supervisor._gc_generations()
        assert old.unlinked  # every live ack moved past it
        assert not new.unlinked
        assert [g.number for g in tenant.generations] == [2]


# ----------------------------------------------------------------- chaos


class TestPreforkChaos:
    def test_worker_kill_mid_traffic_respawns_with_zero_failures(
        self, alpha_prefix, tmp_path
    ):
        run_dir = tmp_path / "run"
        with use_registry(MetricsRegistry()):
            fleet = _Prefork({"default": alpha_prefix}, run_dir)
            traffic = _Traffic(
                fleet.host, fleet.port, {"user": "u0", "time": 2.0, "k": 2}
            )
            try:
                traffic.start()
                deadline = time.monotonic() + 5
                while traffic.ok < 10 and time.monotonic() < deadline:
                    time.sleep(0.02)
                before = _live_worker_pids(run_dir)
                assert len(before) == 2

                victim = kill_prefork_worker(run_dir)
                assert victim in before

                # The supervisor respawns a fresh process for the slot.
                deadline = time.monotonic() + 30
                while time.monotonic() < deadline:
                    pids = _live_worker_pids(run_dir)
                    if len(pids) == 2 and victim not in pids:
                        break
                    time.sleep(0.05)
                pids = _live_worker_pids(run_dir)
                assert len(pids) == 2 and victim not in pids
                assert fleet.supervisor.respawns >= 1

                # Traffic kept flowing throughout the kill + respawn.
                settled = traffic.ok
                deadline = time.monotonic() + 10
                while traffic.ok < settled + 10 and time.monotonic() < deadline:
                    time.sleep(0.02)
                assert traffic.ok > settled
            finally:
                traffic.finish()
                fleet.stop()
        # SIGKILL dropped connections (retried), but zero HTTP failures.
        assert traffic.http_failures == []
        assert _model_segments(os.getpid()) == []

    def test_death_inside_reattach_window_cannot_tear_the_swap(
        self, alpha_prefix, next_model, tmp_path
    ):
        """Kill a worker between manifest read and segment attach.

        The dying worker never acks generation 2, so the parent must keep
        generation 1 alive until the *respawned* worker (which attaches
        whatever the manifest names now) acks — then converge to exactly
        one live generation with every request answered from gen 2.
        """
        with use_registry(MetricsRegistry()):
            # deaths=0: arm the seam pre-fork (workers inherit the patch)
            # but write the kill token only once startup's initial
            # attaches — which pass through the same hook — are done.
            with prefork_reattach_crash(tmp_path, deaths=0) as token_dir:
                fleet = _Prefork({"default": alpha_prefix}, tmp_path / "run")
                try:
                    (token_dir / "token-0").write_text("kill")
                    save_model(next_model, alpha_prefix)

                    deadline = time.monotonic() + 30
                    died = converged = False
                    while time.monotonic() < deadline:
                        died = any(token_dir.glob("*.claimed"))
                        try:
                            status, raw, _ = _request(
                                fleet.host, fleet.port, "GET",
                                "/skill?user=u0&time=3",
                            )
                        except (ConnectionError, OSError):
                            time.sleep(0.05)  # hit the dying worker; retry
                            continue
                        converged = (
                            status == 200
                            and json.loads(raw)["model_version"] == 2
                            and len(_model_segments(os.getpid())) == 1
                            and len(_live_worker_pids(tmp_path / "run")) == 2
                        )
                        if died and converged:
                            break
                        time.sleep(0.05)
                    # Exactly one worker claimed the token and died inside
                    # the re-attach window ...
                    assert died
                    assert len(list(token_dir.glob("*.claimed"))) == 1
                    # ... and the fleet still converged on generation 2
                    # with the old generation retired only after all acks.
                    assert converged
                    assert len(_live_worker_pids(tmp_path / "run")) == 2
                finally:
                    fleet.stop()
        assert _model_segments(os.getpid()) == []


# ------------------------------------------------------------------- CLI


def _free_port() -> int:
    probe = socket.socket()
    try:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]
    finally:
        probe.close()


def _wait_healthz(port: int, proc, timeout: float = 45.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            out, err = proc.communicate(timeout=5)
            raise AssertionError(f"server exited early: {out!r} {err!r}")
        try:
            status, _raw, _ = _request("127.0.0.1", port, "GET", "/healthz", timeout=5)
            if status == 200:
                return
        except OSError:
            time.sleep(0.1)
    raise AssertionError("server did not become healthy")


def _spawn_cli(args, tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_REPO / "src")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *args],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
        cwd=tmp_path,
    )


class TestPreforkCli:
    def test_parent_sigterm_drains_children_and_unlinks_shm(
        self, alpha_prefix, next_model, tmp_path
    ):
        beta_prefix = tmp_path / "beta"
        save_model(next_model, beta_prefix)
        run_dir = tmp_path / "run"
        port = _free_port()
        proc = _spawn_cli(
            [
                "serve", str(alpha_prefix),
                "--workers", "2",
                "--tenant", f"beta={beta_prefix}",
                "--port", str(port),
                "--run-dir", str(run_dir),
            ],
            tmp_path,
        )
        try:
            _wait_healthz(port, proc)
            status, _raw, _ = _request(
                "127.0.0.1", port, "POST", "/predict",
                {"user": "u0", "time": 3.0, "k": 2},
            )
            assert status == 200
            status, raw, _ = _request("127.0.0.1", port, "GET", "/t/beta/healthz")
            assert status == 200
            assert json.loads(raw)["tenant"] == "beta"
            children = _live_worker_pids(run_dir)
            assert len(children) == 2
            # Two tenants published: two live segments owned by the parent.
            assert len(_model_segments(proc.pid)) == 2

            proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:  # pragma: no cover - hang cleanup
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, (out, err)
        assert "shutting down" in out
        # Drain completed: every child exited and every segment unlinked.
        for pid in children:
            with pytest.raises(OSError):
                os.kill(pid, 0)
        assert _model_segments(proc.pid) == []

    def test_single_process_sigterm_leaves_no_shm(
        self, alpha_prefix, next_model, tmp_path
    ):
        """Satellite regression beside TestGracefulSigterm: the classic
        single-process path (now registry-backed, multi-tenant capable)
        must close its registry on SIGTERM and leave /dev/shm untouched."""
        beta_prefix = tmp_path / "beta"
        save_model(next_model, beta_prefix)
        port = _free_port()
        proc = _spawn_cli(
            [
                "serve", str(alpha_prefix),
                "--tenant", f"beta={beta_prefix}",
                "--port", str(port),
            ],
            tmp_path,
        )
        try:
            _wait_healthz(port, proc)
            status, _raw, _ = _request(
                "127.0.0.1", port, "POST", "/t/beta/predict",
                {"user": "u0", "time": 2.0},
            )
            assert status == 200
            proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:  # pragma: no cover - hang cleanup
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, (out, err)
        assert "shutting down (SIGTERM)" in out
        leaked = [
            name
            for name in (os.listdir("/dev/shm") if os.path.isdir("/dev/shm") else [])
            if name.startswith(SHM_PREFIX) and f"_{proc.pid}_" in name
        ]
        assert leaked == []
