"""Tests for the four domain simulators (language, cooking, beer, film)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.synth import (
    BeerConfig,
    CookingConfig,
    FilmConfig,
    LanguageConfig,
    generate_beer,
    generate_cooking,
    generate_film,
    generate_language,
    monotone_skill_path,
    rng_for,
    sample_sequence_length,
)


class TestSeeds:
    def test_same_purpose_same_stream(self):
        a = rng_for(5, "items").random(3)
        b = rng_for(5, "items").random(3)
        np.testing.assert_array_equal(a, b)

    def test_different_purposes_differ(self):
        a = rng_for(5, "items").random(3)
        b = rng_for(5, "sequences").random(3)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.array_equal(rng_for(1, "x").random(3), rng_for(2, "x").random(3))


class TestBaseHelpers:
    def test_sequence_length_floor(self):
        rng = np.random.default_rng(0)
        assert sample_sequence_length(rng, 0.001, minimum=2) >= 2

    def test_sequence_length_validation(self):
        with pytest.raises(ConfigurationError):
            sample_sequence_length(np.random.default_rng(0), 0)

    def test_monotone_skill_path_properties(self):
        rng = np.random.default_rng(1)
        path = monotone_skill_path(rng, 50, 4, level_up_prob=0.3)
        assert len(path) == 50
        assert path.min() >= 1 and path.max() <= 4
        steps = np.diff(path)
        assert np.all((steps == 0) | (steps == 1))

    def test_monotone_skill_path_start_level(self):
        rng = np.random.default_rng(2)
        path = monotone_skill_path(rng, 10, 5, start_level=3, level_up_prob=0.0)
        assert np.all(path == 3)

    def test_monotone_skill_path_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError):
            monotone_skill_path(rng, 5, 3, start_level=9)
        with pytest.raises(ConfigurationError):
            monotone_skill_path(rng, 5, 0)
        with pytest.raises(ConfigurationError):
            monotone_skill_path(rng, 5, 3, level_up_prob=2.0)


class TestLanguage:
    @pytest.fixture(scope="class")
    def ds(self):
        return generate_language(LanguageConfig(num_users=80, seed=1))

    def test_one_item_per_action(self, ds):
        assert len(ds.catalog) == ds.log.num_actions

    def test_each_article_selected_once(self, ds):
        assert all(count == 1 for count in ds.log.item_counts().values())

    def test_true_skills_monotone(self, ds):
        for seq in ds.log:
            assert np.all(np.diff(ds.true_skills[seq.user]) >= 0)

    def test_planted_correction_trend(self, ds):
        """Articles written at level 3 carry fewer corrections on average."""
        by_level = {1: [], 3: []}
        for item in ds.catalog:
            level = item.metadata["true_level"]
            if level in by_level:
                by_level[level].append(item.features["corrections"])
        assert np.mean(by_level[3]) < np.mean(by_level[1])

    def test_encodes_under_schema(self, ds):
        assert ds.feature_set.encode(ds.catalog).num_items == len(ds.catalog)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            LanguageConfig(correction_means=(1.0, 2.0))  # wrong arity for S=3
        with pytest.raises(ConfigurationError):
            LanguageConfig(correction_means=(1.0, 2.0, -1.0))


class TestCooking:
    @pytest.fixture(scope="class")
    def ds(self):
        return generate_cooking(CookingConfig(num_users=80, num_items=300, seed=1))

    def test_counts(self, ds):
        assert ds.log.num_users == 80
        assert len(ds.catalog) == 300

    def test_difficulty_in_range(self, ds):
        values = np.asarray(list(ds.true_difficulty.values()))
        assert values.min() >= 1.0 and values.max() <= 5.0

    def test_complexity_features_track_difficulty(self, ds):
        easy = [i for i in ds.catalog if i.metadata["difficulty"] < 1.5]
        hard = [i for i in ds.catalog if i.metadata["difficulty"] > 4.5]
        assert np.mean([i.features["num_steps"] for i in hard]) > np.mean(
            [i.features["num_steps"] for i in easy]
        )

    def test_novice_overreach_plants_violation(self):
        """With overreach on, level-1 users select above their level."""
        ds = generate_cooking(
            CookingConfig(num_users=60, num_items=300, seed=2, novice_overreach=0.6)
        )
        overreached = 0
        for seq in ds.log:
            levels = ds.true_skills[seq.user]
            for action, level in zip(seq, levels):
                if level == 1 and ds.true_difficulty[action.item] > 2.0:
                    overreached += 1
        assert overreached > 0

    def test_no_overreach_respects_capacity(self):
        ds = generate_cooking(
            CookingConfig(num_users=40, num_items=300, seed=3, novice_overreach=0.0)
        )
        for seq in ds.log:
            levels = ds.true_skills[seq.user]
            for action, level in zip(seq, levels):
                # recipe complexity is noisy around its pool level (±0.4 σ,
                # clipped), so allow the pool-assignment slack
                assert ds.true_difficulty[action.item] <= level + 1.5


class TestBeer:
    @pytest.fixture(scope="class")
    def ds(self):
        return generate_beer(
            BeerConfig(num_users=30, num_items=200, mean_sequence_length=40, seed=1)
        )

    def test_ratings_present_and_bounded(self, ds):
        ratings = [a.rating for a in ds.log.actions()]
        assert all(r is not None for r in ratings)
        assert min(ratings) >= 0.0 and max(ratings) <= 5.0

    def test_style_difficulty_planted(self, ds):
        lagers = [i for i in ds.catalog if i.features["style"] == "Pale Lager"]
        ipas = [i for i in ds.catalog if "Imperial" in i.features["style"]]
        if lagers and ipas:
            assert np.mean([i.metadata["difficulty"] for i in ipas]) > np.mean(
                [i.metadata["difficulty"] for i in lagers]
            )

    def test_abv_positive(self, ds):
        assert all(i.features["abv"] > 0 for i in ds.catalog)

    def test_skilled_users_drink_stronger(self, ds):
        """Actions at true level 5 average higher-difficulty beers than
        actions at true level 1 — the drift Figure 6 rests on."""
        by_level = {1: [], 5: []}
        for seq in ds.log:
            for action, level in zip(seq, ds.true_skills[seq.user]):
                if level in by_level:
                    by_level[level].append(ds.true_difficulty[action.item])
        if by_level[1] and by_level[5]:
            assert np.mean(by_level[5]) > np.mean(by_level[1])


class TestFilm:
    @pytest.fixture(scope="class")
    def ds(self):
        return generate_film(
            FilmConfig(num_users=40, num_items=200, mean_sequence_length=25, seed=1)
        )

    def test_no_action_precedes_release(self, ds):
        for seq in ds.log:
            for action in seq:
                year = ds.catalog[action.item].metadata["year"]
                assert year <= action.time + 1e-9

    def test_classics_are_older_and_harder(self, ds):
        classics = [i for i in ds.catalog if i.metadata["classic"]]
        light = [i for i in ds.catalog if not i.metadata["classic"]]
        assert np.mean([i.metadata["year"] for i in classics]) < np.mean(
            [i.metadata["year"] for i in light]
        )
        assert np.mean([i.metadata["difficulty"] for i in classics]) > np.mean(
            [i.metadata["difficulty"] for i in light]
        )

    def test_lastness_prefers_recent(self, ds):
        """Selected movies skew much more recent than the catalog."""
        catalog_years = [i.metadata["year"] for i in ds.catalog]
        watched_years = [
            ds.catalog[a.item].metadata["year"] for a in ds.log.actions()
        ]
        assert np.mean(watched_years) > np.mean(catalog_years)

    def test_lastness_disabled(self):
        ds = generate_film(
            FilmConfig(
                num_users=30,
                num_items=200,
                mean_sequence_length=20,
                seed=2,
                lastness_tau=float("inf"),
            )
        )
        assert ds.log.num_actions > 0

    def test_ratings_bounded(self, ds):
        ratings = [a.rating for a in ds.log.actions()]
        assert min(ratings) >= 0.0 and max(ratings) <= 5.0

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            FilmConfig(lastness_tau=0.0)
        with pytest.raises(ConfigurationError):
            FilmConfig(first_release_year=2000, last_release_year=1990)
