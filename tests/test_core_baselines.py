"""Tests for repro.core.baselines (Uniform and ID models)."""

import numpy as np
import pytest

from repro.core.baselines import fit_id_baseline, fit_uniform_baseline, id_feature_set
from repro.core.features import ID_FEATURE
from repro.core.training import uniform_segment_levels
from repro.data.actions import ActionLog
from repro.exceptions import DataError


class TestIdFeatureSet:
    def test_only_id(self):
        fs = id_feature_set()
        assert fs.names == (ID_FEATURE,)


class TestUniformBaseline:
    def test_assignments_are_equal_segments(self, tiny_log, tiny_catalog):
        model = fit_uniform_baseline(tiny_log, tiny_catalog, 3)
        for seq in tiny_log:
            expected = uniform_segment_levels(len(seq), 3) + 1
            np.testing.assert_array_equal(model.skill_trajectory(seq.user), expected)

    def test_no_iteration(self, tiny_log, tiny_catalog):
        model = fit_uniform_baseline(tiny_log, tiny_catalog, 3)
        assert model.trace.num_iterations == 1
        assert model.trace.converged

    def test_produces_usable_id_distributions(self, tiny_log, tiny_catalog):
        model = fit_uniform_baseline(tiny_log, tiny_catalog, 3)
        probs = model.item_probabilities(2)
        assert probs.sum() == pytest.approx(1.0)

    def test_custom_feature_set(self, tiny_log, tiny_catalog, tiny_feature_set):
        model = fit_uniform_baseline(
            tiny_log, tiny_catalog, 3, feature_set=tiny_feature_set
        )
        assert model.feature_set.names == tiny_feature_set.names

    def test_empty_log_rejected(self, tiny_catalog):
        with pytest.raises(DataError):
            fit_uniform_baseline(ActionLog([]), tiny_catalog, 3)

    def test_log_likelihood_consistent_with_assignments(self, tiny_log, tiny_catalog):
        model = fit_uniform_baseline(tiny_log, tiny_catalog, 2)
        table = model.item_score_table()
        manual = 0.0
        for seq in tiny_log:
            levels = model.skill_trajectory(seq.user) - 1
            rows = model.encoded.rows_for(seq.items)
            manual += table[levels, rows].sum()
        assert model.log_likelihood == pytest.approx(manual)

    def test_skill_at_works(self, tiny_log, tiny_catalog):
        model = fit_uniform_baseline(tiny_log, tiny_catalog, 3)
        assert model.skill_at("u0", 0.0) == 1
        assert model.skill_at("u0", 1e9) == 3


class TestIdBaseline:
    def test_uses_only_id_feature(self, tiny_log, tiny_catalog):
        model = fit_id_baseline(tiny_log, tiny_catalog, 3, init_min_actions=5)
        assert model.feature_set.names == (ID_FEATURE,)

    def test_extra_features_added(self, tiny_log, tiny_catalog, tiny_feature_set):
        model = fit_id_baseline(
            tiny_log,
            tiny_catalog,
            3,
            extra_features=tiny_feature_set.subset(["steps"]),
            init_min_actions=5,
        )
        assert set(model.feature_set.names) == {ID_FEATURE, "steps"}

    def test_id_model_fits_better_than_uniform(self, tiny_log, tiny_catalog):
        """Trained assignments must reach at least the uniform baseline's
        likelihood — it starts from that initialization."""
        uniform = fit_uniform_baseline(tiny_log, tiny_catalog, 3)
        trained = fit_id_baseline(
            tiny_log, tiny_catalog, 3, init_min_actions=5, max_iterations=30
        )
        assert trained.log_likelihood >= uniform.log_likelihood - 1e-6
