"""Benchmark: regenerate paper design ablation (additive smoothing sweep).

See the corresponding module in repro.experiments for the experiment
definition and DESIGN.md for the paper-artifact mapping.
"""


def test_ablation_smoothing(paper_experiment):
    paper_experiment("ablation_smoothing")
