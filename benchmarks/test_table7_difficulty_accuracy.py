"""Benchmark: regenerate paper Table VII (difficulty accuracy on Synthetic).

See the corresponding module in repro.experiments for the experiment
definition and DESIGN.md for the paper-artifact mapping.
"""


def test_table7(paper_experiment):
    paper_experiment("table7")
