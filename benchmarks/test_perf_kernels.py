"""Micro-benchmarks of the library's hot kernels.

Unlike the paper-artifact benchmarks (one pedantic round each), these are
conventional pytest-benchmark measurements with many rounds, guarding the
performance of the three inner loops everything else is built on:

- the assignment DP (Equation 4) — dominates training time,
- the (levels × items) score-table build — once per training iteration,
- one FFM training epoch — dominates the Table XII task.

They assert only generous sanity floors (so a 10× regression fails loudly)
and otherwise exist to track the numbers over time.
"""

import numpy as np
import pytest

from repro.core.dp import best_monotone_path
from repro.core.model import SkillParameters
from repro.recsys.encoding import RatingEncoder, RatingInstance
from repro.recsys.ffm import FFMConfig, FFMModel

SEQUENCE_LENGTH = 200
NUM_LEVELS = 5


@pytest.fixture(scope="module")
def dp_scores():
    rng = np.random.default_rng(0)
    return rng.normal(size=(SEQUENCE_LENGTH, NUM_LEVELS))


def test_perf_assignment_dp(benchmark, dp_scores):
    result = benchmark(best_monotone_path, dp_scores)
    assert len(result.levels) == SEQUENCE_LENGTH
    # Sanity floor: > 100k actions/second on any modern machine.
    assert benchmark.stats["mean"] < SEQUENCE_LENGTH / 100_000


def test_perf_skiplevel_dp(benchmark, dp_scores):
    penalties = np.array([0.0, np.log(0.7), np.log(0.3)])
    result = benchmark(
        best_monotone_path, dp_scores, max_step=2, step_log_penalties=penalties
    )
    assert len(result.levels) == SEQUENCE_LENGTH


@pytest.fixture(scope="module")
def encoded_catalog():
    from repro.synth import SyntheticConfig, generate_synthetic

    ds = generate_synthetic(SyntheticConfig(num_users=5, num_items=2000, seed=0))
    return ds.feature_set.encode(ds.catalog)


def test_perf_score_table(benchmark, encoded_catalog):
    rows = np.arange(encoded_catalog.num_items)
    params = SkillParameters.fit_from_assignments(
        encoded_catalog, rows, rows % NUM_LEVELS, num_levels=NUM_LEVELS
    )
    table = benchmark(params.item_score_table, encoded_catalog)
    assert table.shape == (NUM_LEVELS, 2000)


def test_perf_ffm_epoch(benchmark):
    rng = np.random.default_rng(1)
    instances = [
        RatingInstance(
            user=f"u{int(rng.integers(200))}",
            item=f"i{int(rng.integers(300))}",
            rating=float(rng.uniform(0, 5)),
            skill=int(rng.integers(1, 6)),
            difficulty=float(rng.uniform(1, 5)),
        )
        for _ in range(2000)
    ]
    encoder = RatingEncoder(include_skill=True, include_difficulty=True).fit(instances)
    samples = encoder.encode(instances)

    def one_epoch():
        model = FFMModel(
            encoder.num_features, encoder.num_fields, FFMConfig(epochs=1, seed=0)
        )
        model.fit(samples)
        return model

    model = benchmark(one_epoch)
    assert np.isfinite(model.rmse(samples))
