"""Micro-benchmarks of the library's hot kernels.

Unlike the paper-artifact benchmarks (one pedantic round each), these are
conventional pytest-benchmark measurements with many rounds, guarding the
performance of the inner loops everything else is built on:

- the assignment DP (Equation 4) — dominates training time,
- the batched multi-user DP kernel behind the assignment engine,
- the (levels × items) score-table build — once per training iteration,
  cold and warm-cached (the ``ScoreTableCache`` steady state),
- the incremental M-step: patching ``SkillStats`` for the actions that
  moved and refitting only the dirty levels' cells,
- one FFM training epoch — dominates the Table XII task.

They assert only generous sanity floors (so a 10× regression fails loudly)
and otherwise exist to track the numbers over time.
"""

import numpy as np
import pytest

from repro.core.dp import best_monotone_path
from repro.core.dp_batch import batch_assign
from repro.core.model import ScoreTableCache, SkillParameters
from repro.recsys.encoding import RatingEncoder, RatingInstance
from repro.recsys.ffm import FFMConfig, FFMModel

SEQUENCE_LENGTH = 200
NUM_LEVELS = 5


@pytest.fixture(scope="module")
def dp_scores():
    rng = np.random.default_rng(0)
    return rng.normal(size=(SEQUENCE_LENGTH, NUM_LEVELS))


def test_perf_assignment_dp(benchmark, dp_scores):
    result = benchmark(best_monotone_path, dp_scores)
    assert len(result.levels) == SEQUENCE_LENGTH
    # Sanity floor: > 100k actions/second on any modern machine.
    assert benchmark.stats["mean"] < SEQUENCE_LENGTH / 100_000


def test_perf_skiplevel_dp(benchmark, dp_scores):
    penalties = np.array([0.0, np.log(0.7), np.log(0.3)])
    result = benchmark(
        best_monotone_path, dp_scores, max_step=2, step_log_penalties=penalties
    )
    assert len(result.levels) == SEQUENCE_LENGTH


def test_perf_batch_assign(benchmark):
    rng = np.random.default_rng(2)
    num_users, num_items = 500, 400
    table = rng.normal(size=(NUM_LEVELS, num_items))
    user_rows = [
        rng.integers(0, num_items, size=int(rng.integers(1, 61)))
        for _ in range(num_users)
    ]
    total_actions = sum(len(r) for r in user_rows)
    results = benchmark(batch_assign, table, user_rows)
    assert len(results) == num_users
    # The batched kernel must beat the scalar loop's floor comfortably:
    # > 1M actions/second on any modern machine.
    assert benchmark.stats["mean"] < total_actions / 1_000_000


@pytest.fixture(scope="module")
def encoded_catalog():
    from repro.synth import SyntheticConfig, generate_synthetic

    ds = generate_synthetic(SyntheticConfig(num_users=5, num_items=2000, seed=0))
    return ds.feature_set.encode(ds.catalog)


def test_perf_score_table(benchmark, encoded_catalog):
    rows = np.arange(encoded_catalog.num_items)
    params = SkillParameters.fit_from_assignments(
        encoded_catalog, rows, rows % NUM_LEVELS, num_levels=NUM_LEVELS
    )
    table = benchmark(params.item_score_table, encoded_catalog)
    assert table.shape == (NUM_LEVELS, 2000)


def test_perf_score_table_warm_cache(benchmark, encoded_catalog):
    """Warm rebuild with unchanged cells — the late-training steady state."""
    rows = np.arange(encoded_catalog.num_items)
    params = SkillParameters.fit_from_assignments(
        encoded_catalog, rows, rows % NUM_LEVELS, num_levels=NUM_LEVELS
    )
    cache = ScoreTableCache()
    cold = params.item_score_table(encoded_catalog, cache=cache)
    misses_after_cold = cache.misses
    table = benchmark(params.item_score_table, encoded_catalog, cache=cache)
    np.testing.assert_array_equal(table, cold)
    assert cache.misses == misses_after_cold  # every warm rebuild was all hits


def test_perf_incremental_cell_fit(benchmark, encoded_catalog):
    """Dirty-cell refit from patched statistics — the M-step steady state."""
    from repro.core.model import _cell_cache_key
    from repro.core.stats import SkillStats

    rng = np.random.default_rng(3)
    num_items = encoded_catalog.num_items
    rows = np.arange(num_items)
    levels = rows % NUM_LEVELS
    stats = SkillStats.from_assignments(
        encoded_catalog, rows, levels, num_levels=NUM_LEVELS
    )
    base = SkillParameters.fit_from_stats(stats)
    moved = rng.choice(np.flatnonzero(levels == 1), size=num_items // 100, replace=False)
    new_levels = levels.copy()
    new_levels[moved] = 2
    state = {"forward": True}

    def incremental_refit():
        old, new = (levels, new_levels) if state["forward"] else (new_levels, levels)
        state["forward"] = not state["forward"]
        dirty = stats.update(rows[moved], old[moved], new[moved])
        return SkillParameters.fit_from_stats(stats, previous=base, dirty_levels=dirty)

    patched = benchmark(incremental_refit)
    # Exact parity: dirty levels' cells equal a from-scratch fit of the
    # same assignment; clean levels reuse the previous objects.
    current = levels if state["forward"] else new_levels
    rebuilt = SkillParameters.fit_from_assignments(
        encoded_catalog, rows, current, num_levels=NUM_LEVELS
    )
    for patched_row, rebuilt_row in zip(patched.cells, rebuilt.cells):
        for a, b in zip(patched_row, rebuilt_row):
            assert _cell_cache_key(a) == _cell_cache_key(b)
    # Generous floor: a partial refit must stay under 100ms outright.
    assert benchmark.stats["mean"] < 0.1


def test_perf_ffm_epoch(benchmark):
    rng = np.random.default_rng(1)
    instances = [
        RatingInstance(
            user=f"u{int(rng.integers(200))}",
            item=f"i{int(rng.integers(300))}",
            rating=float(rng.uniform(0, 5)),
            skill=int(rng.integers(1, 6)),
            difficulty=float(rng.uniform(1, 5)),
        )
        for _ in range(2000)
    ]
    encoder = RatingEncoder(include_skill=True, include_difficulty=True).fit(instances)
    samples = encoder.encode(instances)

    def one_epoch():
        model = FFMModel(
            encoder.num_features, encoder.num_fields, FFMConfig(epochs=1, seed=0)
        )
        model.fit(samples)
        return model

    model = benchmark(one_epoch)
    assert np.isfinite(model.rmse(samples))
