"""Benchmark: regenerate paper Table IV (top movies per level, raw data).

See the corresponding module in repro.experiments for the experiment
definition and DESIGN.md for the paper-artifact mapping.
"""


def test_table4(paper_experiment):
    paper_experiment("table4")
