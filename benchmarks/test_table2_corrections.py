"""Benchmark: regenerate paper Table II (correction rules by skill dominance).

See the corresponding module in repro.experiments for the experiment
definition and DESIGN.md for the paper-artifact mapping.
"""


def test_table2(paper_experiment):
    paper_experiment("table2")
