"""Benchmark: regenerate paper Table X (item prediction at random positions).

See the corresponding module in repro.experiments for the experiment
definition and DESIGN.md for the paper-artifact mapping.
"""


def test_table10(paper_experiment):
    paper_experiment("table10")
