"""Benchmark: regenerate paper Table XI (item prediction at last positions).

See the corresponding module in repro.experiments for the experiment
definition and DESIGN.md for the paper-artifact mapping.
"""


def test_table11(paper_experiment):
    paper_experiment("table11")
