"""Benchmark: regenerate paper Figure 4 (language model components per level).

See the corresponding module in repro.experiments for the experiment
definition and DESIGN.md for the paper-artifact mapping.
"""


def test_fig4(paper_experiment):
    paper_experiment("fig4")
