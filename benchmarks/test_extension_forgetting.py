"""Benchmark: regenerate paper extension (forgetting-aware assignment).

See the corresponding module in repro.experiments for the experiment
definition and DESIGN.md for the paper-artifact mapping.
"""


def test_extension_forgetting(paper_experiment):
    paper_experiment("extension_forgetting")
