"""Benchmark: regenerate paper Figure 7 (training time vs worker count).

See the corresponding module in repro.experiments for the experiment
definition and DESIGN.md for the paper-artifact mapping.
"""


def test_fig7(paper_experiment):
    paper_experiment("fig7")
