"""Benchmark: regenerate the data-efficiency extension sweep.

See the corresponding module in repro.experiments for the experiment
definition and DESIGN.md for the paper-artifact mapping.
"""


def test_extension_scaling(paper_experiment):
    paper_experiment("extension_scaling")
