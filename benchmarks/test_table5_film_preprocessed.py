"""Benchmark: regenerate paper Table V (top movies per level after lastness preprocessing).

See the corresponding module in repro.experiments for the experiment
definition and DESIGN.md for the paper-artifact mapping.
"""


def test_table5(paper_experiment):
    paper_experiment("table5")
