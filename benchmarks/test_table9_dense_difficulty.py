"""Benchmark: regenerate paper Table IX (difficulty accuracy on Synthetic_dense).

See the corresponding module in repro.experiments for the experiment
definition and DESIGN.md for the paper-artifact mapping.
"""


def test_table9(paper_experiment):
    paper_experiment("table9")
