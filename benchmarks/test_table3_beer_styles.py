"""Benchmark: regenerate paper Table III (beer styles by skill dominance).

See the corresponding module in repro.experiments for the experiment
definition and DESIGN.md for the paper-artifact mapping.
"""


def test_table3(paper_experiment):
    paper_experiment("table3")
