"""Benchmark: regenerate paper Figure 3 (held-out log-likelihood vs skill count, Cooking).

See the corresponding module in repro.experiments for the experiment
definition and DESIGN.md for the paper-artifact mapping.
"""


def test_fig3(paper_experiment):
    paper_experiment("fig3")
