"""Benchmark: regenerate paper extension (progression vs Markov chain).

See the corresponding module in repro.experiments for the experiment
definition and DESIGN.md for the paper-artifact mapping.
"""


def test_extension_markov(paper_experiment):
    paper_experiment("extension_markov")
