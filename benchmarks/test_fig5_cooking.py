"""Benchmark: regenerate paper Figure 5 (cooking components and novice overreach).

See the corresponding module in repro.experiments for the experiment
definition and DESIGN.md for the paper-artifact mapping.
"""


def test_fig5(paper_experiment):
    paper_experiment("fig5")
