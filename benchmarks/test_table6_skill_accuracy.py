"""Benchmark: regenerate paper Table VI (skill accuracy on Synthetic).

See the corresponding module in repro.experiments for the experiment
definition and DESIGN.md for the paper-artifact mapping.
"""


def test_table6(paper_experiment):
    paper_experiment("table6")
