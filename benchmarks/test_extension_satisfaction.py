"""Benchmark: regenerate paper extension (satisfaction-weighted training).

See the corresponding module in repro.experiments for the experiment
definition and DESIGN.md for the paper-artifact mapping.
"""


def test_extension_satisfaction(paper_experiment):
    paper_experiment("extension_satisfaction")
