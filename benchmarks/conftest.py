"""Benchmark harness: every paper table/figure as a pytest-benchmark case.

Each benchmark file regenerates exactly one paper artifact through the
experiment registry, prints the reproduced table, and asserts the
artifact's *shape checks* (who wins, which way trends point, where
crossovers fall) — not the paper's absolute numbers, which belong to the
authors' datasets and hardware.

Run with::

    pytest benchmarks/ --benchmark-only

Datasets and fitted models are cached per process (see
``repro.experiments.datasets``), so the first benchmark touching a domain
pays its generation cost and the rest reuse it; the benchmark timings
therefore measure experiment logic, not dataset generation, for all but
the first user of each domain.
"""

from __future__ import annotations

import pytest

from repro.experiments import run_experiment


#: Experiments whose checks compare wall-clock timings.  On a small shared
#: host a background burst can invert a sub-second comparison, so these
#: get one retry before the benchmark fails — accuracy-shaped experiments
#: are deterministic and never retried.
_TIMING_EXPERIMENTS = {"table13", "fig7", "extension_incremental", "ablation_hard_vs_soft"}


@pytest.fixture
def paper_experiment(benchmark, capsys):
    """Run a registered experiment under the benchmark clock and verify
    its shape checks."""

    def _run(experiment_id: str, scale: str = "small"):
        result = benchmark.pedantic(
            run_experiment, args=(experiment_id, scale), iterations=1, rounds=1
        )
        failed = [name for name, ok in result.checks.items() if not ok]
        if failed and experiment_id in _TIMING_EXPERIMENTS:
            with capsys.disabled():
                print(
                    f"\n[{experiment_id}] timing checks failed under load "
                    f"({failed}); retrying once"
                )
            result = run_experiment(experiment_id, scale)
            failed = [name for name, ok in result.checks.items() if not ok]
        with capsys.disabled():
            print("\n" + result.to_text())
        assert result.rows, f"{experiment_id} produced no rows"
        assert not failed, f"{experiment_id} shape checks failed: {failed}"
        return result

    return _run
