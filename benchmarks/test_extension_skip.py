"""Benchmark: regenerate paper extension (skip-level progression transitions).

See the corresponding module in repro.experiments for the experiment
definition and DESIGN.md for the paper-artifact mapping.
"""


def test_extension_skip(paper_experiment):
    paper_experiment("extension_skip")
