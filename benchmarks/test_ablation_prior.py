"""Benchmark: regenerate paper design ablation (difficulty prior under skew).

See the corresponding module in repro.experiments for the experiment
definition and DESIGN.md for the paper-artifact mapping.
"""


def test_ablation_prior(paper_experiment):
    paper_experiment("ablation_prior")
