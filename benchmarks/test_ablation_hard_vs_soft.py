"""Benchmark: regenerate paper design ablation (hard DP vs soft EM training).

See the corresponding module in repro.experiments for the experiment
definition and DESIGN.md for the paper-artifact mapping.
"""


def test_ablation_hard_vs_soft(paper_experiment):
    paper_experiment("ablation_hard_vs_soft")
