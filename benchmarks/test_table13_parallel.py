"""Benchmark: regenerate paper Table XIII (training time vs parallelization condition).

See the corresponding module in repro.experiments for the experiment
definition and DESIGN.md for the paper-artifact mapping.
"""


def test_table13(paper_experiment):
    paper_experiment("table13")
