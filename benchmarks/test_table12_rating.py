"""Benchmark: regenerate paper Table XII (beer rating prediction with FFMs).

See the corresponding module in repro.experiments for the experiment
definition and DESIGN.md for the paper-artifact mapping.
"""


def test_table12(paper_experiment):
    paper_experiment("table12")
