"""Benchmark: regenerate the upskilling-recommender extension (paper Figure 1).

See the corresponding module in repro.experiments for the experiment
definition and DESIGN.md for the paper-artifact mapping.
"""


def test_extension_upskill(paper_experiment):
    paper_experiment("extension_upskill")
