"""Benchmark: regenerate paper Table I (dataset statistics after filtering).

See the corresponding module in repro.experiments for the experiment
definition and DESIGN.md for the paper-artifact mapping.
"""


def test_table1(paper_experiment):
    paper_experiment("table1")
