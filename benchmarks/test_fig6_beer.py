"""Benchmark: regenerate paper Figure 6 (beer ABV distributions per level).

See the corresponding module in repro.experiments for the experiment
definition and DESIGN.md for the paper-artifact mapping.
"""


def test_fig6(paper_experiment):
    paper_experiment("fig6")
