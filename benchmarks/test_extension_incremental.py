"""Benchmark: regenerate the incremental fold-in extension.

See the corresponding module in repro.experiments for the experiment
definition and DESIGN.md for the paper-artifact mapping.
"""


def test_extension_incremental(paper_experiment):
    paper_experiment("extension_incremental")
