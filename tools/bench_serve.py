#!/usr/bin/env python
"""Benchmark the serving subsystem and write ``BENCH_serve.json``.

One measurement, the one the serving layer exists for: a closed-loop load
generator (``--concurrency`` client threads, each with a persistent
``http.client`` connection, each issuing its share of a fixed workload of
``/predict`` and ``/difficulty`` requests) against the same in-process
:class:`~repro.serve.server.SkillServer` in two modes:

- **sequential** — ``max_batch=1``: every request takes its own
  ``predict_items`` / ``difficulty_array`` kernel call, through the same
  batcher code path (the coalescing window degenerates to size-1 flushes);
- **batched** — ``max_batch=64``, ``max_wait_ms=2``: concurrent requests
  coalesce into shared kernel calls.

Both modes answer the *identical* workload; the script asserts every
response body is **byte-identical** across modes before reporting numbers
(batching is a throughput/latency lever, never a semantic one — JSON float
repr is shortest-round-trip, so byte equality means bit equality).

Run from the repo root::

    PYTHONPATH=src python tools/bench_serve.py

Numbers are environment-dependent; the committed ``BENCH_serve.json``
records the machine it was measured on.  CI runs ``--quick`` and asserts
only parity plus sanity floors, not speedups.
"""

from __future__ import annotations

import argparse
import http.client
import json
import platform
import statistics
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from repro.core.serialize import save_model
from repro.core.training import fit_skill_model
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.serve import ModelState, ServeConfig, ServerThread, SkillServer
from repro.synth import CookingConfig, generate_cooking

PRIORS = ("uniform", "empirical")


def _build_model(prefix: Path, *, users: int, quick: bool) -> dict:
    """Fit a model big enough that per-request kernel cost is non-trivial."""
    dataset = generate_cooking(CookingConfig(num_users=users, seed=7))
    model = fit_skill_model(
        dataset.log,
        dataset.catalog,
        dataset.feature_set,
        num_levels=4,
        max_iterations=2 if quick else 6,
        init_min_actions=10,
    )
    save_model(model, prefix)
    structure = json.loads(prefix.with_suffix(".json").read_text(encoding="utf-8"))
    return {
        "users": structure["users"],
        "items": structure["item_ids"],
        "num_actions": dataset.log.num_actions,
    }


def _workload(info: dict, num_requests: int) -> list[tuple[str, bytes]]:
    """A deterministic request list: (path, body) pairs, predict-heavy."""
    users = info["users"]
    items = info["items"]
    requests: list[tuple[str, bytes]] = []
    for r in range(num_requests):
        if r % 3 == 2:
            batch = [items[(r * 13 + j * 7) % len(items)] for j in range(8)]
            body = {"items": batch, "prior": PRIORS[r % 2]}
            requests.append(("/difficulty", json.dumps(body).encode("utf-8")))
        else:
            body = {
                "user": users[r % len(users)],
                "time": float(5 + r % 40),
                "k": 10,
                "item": items[(r * 11) % len(items)],
            }
            requests.append(("/predict", json.dumps(body).encode("utf-8")))
    return requests


def _run_mode(
    prefix: Path,
    workload: list[tuple[str, bytes]],
    *,
    max_batch: int,
    concurrency: int,
) -> dict:
    """Serve the whole workload once; returns stats + response bodies."""
    registry = MetricsRegistry()
    set_registry(registry)
    state = ModelState(prefix)
    server = SkillServer(
        state,
        ServeConfig(port=0, max_batch=max_batch, max_wait_ms=2.0, max_queue=4096,
                    timeout_seconds=60.0),
    )
    thread = ServerThread(server)
    host, port = thread.start()

    bodies: list[bytes | None] = [None] * len(workload)
    latencies: list[float] = [0.0] * len(workload)
    errors = [0]
    lock = threading.Lock()
    barrier = threading.Barrier(concurrency + 1)

    def client(worker: int) -> None:
        conn = http.client.HTTPConnection(host, port, timeout=120)
        barrier.wait()
        for index in range(worker, len(workload), concurrency):
            path, payload = workload[index]
            start = time.perf_counter()
            conn.request("POST", path, payload, {"Content-Type": "application/json"})
            response = conn.getresponse()
            body = response.read()
            latencies[index] = time.perf_counter() - start
            if response.status != 200:
                with lock:
                    errors[0] += 1
            bodies[index] = body
        conn.close()

    threads = [
        threading.Thread(target=client, args=(worker,), daemon=True)
        for worker in range(concurrency)
    ]
    for t in threads:
        t.start()
    barrier.wait()
    wall_start = time.perf_counter()
    for t in threads:
        t.join()
    wall = time.perf_counter() - wall_start
    thread.stop()

    batch_hist = registry.snapshot()["histograms"].get("serve.batch_size", {})
    ordered = sorted(latencies)
    return {
        "max_batch": max_batch,
        "wall_seconds": wall,
        "throughput_rps": len(workload) / wall,
        "p50_ms": 1000.0 * statistics.median(ordered),
        "p95_ms": 1000.0 * ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))],
        "mean_ms": 1000.0 * statistics.fmean(ordered),
        "mean_batch_size": batch_hist.get("mean"),
        "flushes": batch_hist.get("count"),
        "errors": errors[0],
        "bodies": bodies,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--users", type=int, default=400)
    parser.add_argument("--requests", type=int, default=2048)
    parser.add_argument("--concurrency", type=int, default=32)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--out", default="BENCH_serve.json")
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: small model/workload, parity + sanity asserts only",
    )
    args = parser.parse_args()
    if args.quick:
        args.users = min(args.users, 80)
        args.requests = min(args.requests, 256)
        args.repeats = 1
    if args.concurrency < 32:
        parser.error("--concurrency must be >= 32 (the scenario being served)")

    with tempfile.TemporaryDirectory() as tmp:
        prefix = Path(tmp) / "bench_model"
        print(f"fitting bench model ({args.users} users)...")
        info = _build_model(prefix, users=args.users, quick=args.quick)
        workload = _workload(info, args.requests)
        print(
            f"workload: {len(workload)} requests "
            f"({sum(1 for p, _ in workload if p == '/predict')} predict / "
            f"{sum(1 for p, _ in workload if p == '/difficulty')} difficulty) "
            f"at concurrency {args.concurrency}"
        )

        modes = {"sequential": 1, "batched": 64}
        results: dict[str, dict] = {}
        for name, max_batch in modes.items():
            best: dict | None = None
            for _ in range(args.repeats):
                run = _run_mode(
                    prefix, workload,
                    max_batch=max_batch, concurrency=args.concurrency,
                )
                if best is None or run["wall_seconds"] < best["wall_seconds"]:
                    best = run
            assert best is not None
            results[name] = best
            print(
                f"{name:10s} p50={best['p50_ms']:7.2f}ms p95={best['p95_ms']:7.2f}ms "
                f"throughput={best['throughput_rps']:7.1f} req/s "
                f"mean_batch={best['mean_batch_size'] or 1:.1f}"
            )

    # Parity: coalesced batching must be semantically invisible.
    mismatches = sum(
        1 for a, b in zip(results["sequential"]["bodies"], results["batched"]["bodies"])
        if a != b
    )
    assert mismatches == 0, f"{mismatches} responses differ between modes"
    assert results["sequential"]["errors"] == 0, "sequential mode had HTTP errors"
    assert results["batched"]["errors"] == 0, "batched mode had HTTP errors"
    assert results["batched"]["mean_batch_size"] > 1.0, (
        "batched mode never coalesced — raise concurrency or workload size"
    )
    print(f"parity: all {len(workload)} response bodies byte-identical across modes")

    for mode in results.values():
        mode.pop("bodies")
    payload = {
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "workload": {
            "model_users": args.users,
            "model_items": len(info["items"]),
            "model_actions": info["num_actions"],
            "requests": args.requests,
            "concurrency": args.concurrency,
            "repeats": args.repeats,
            "quick": args.quick,
        },
        "sequential": results["sequential"],
        "batched": results["batched"],
        "speedup": {
            "p50": results["sequential"]["p50_ms"] / results["batched"]["p50_ms"],
            "p95": results["sequential"]["p95_ms"] / results["batched"]["p95_ms"],
            "throughput": (
                results["batched"]["throughput_rps"]
                / results["sequential"]["throughput_rps"]
            ),
        },
        "parity": {"responses_compared": len(workload), "mismatches": 0},
    }
    Path(args.out).write_text(
        json.dumps(payload, indent=1) + "\n", encoding="utf-8"
    )
    print(f"wrote {args.out}")
    if not args.quick:
        speedup = payload["speedup"]
        print(
            f"speedups vs sequential: p50 {speedup['p50']:.2f}x, "
            f"p95 {speedup['p95']:.2f}x, throughput {speedup['throughput']:.2f}x"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
