#!/usr/bin/env python
"""Benchmark the serving subsystem and write ``BENCH_serve.json``.

One measurement, the one the serving layer exists for: a closed-loop load
generator (``--concurrency`` client threads, each with a persistent
``http.client`` connection, each issuing its share of a fixed workload of
``/predict``, ``/difficulty``, and ``/recommend`` requests) against the
same in-process
:class:`~repro.serve.server.SkillServer` in two modes:

- **sequential** — ``max_batch=1``: every request takes its own
  ``predict_items`` / ``difficulty_array`` kernel call, through the same
  batcher code path (the coalescing window degenerates to size-1 flushes);
- **batched** — ``max_batch=64``, ``max_wait_ms=2``: concurrent requests
  coalesce into shared kernel calls.

Both modes answer the *identical* workload; the script asserts every
response body is **byte-identical** across modes before reporting numbers
(batching is a throughput/latency lever, never a semantic one — JSON float
repr is shortest-round-trip, so byte equality means bit equality).

A dedicated ``recommend`` section repeats the two-mode comparison over a
``/recommend``-only workload (upskill queries plus ``similar_harder``
gathers), with its own byte-parity assert — the recommendation batch
kernel shares one score evaluation per distinct level, and that sharing
must be invisible in the bytes.

A third section measures tracing overhead: three warm ``repro serve``
server *subprocesses* — untraced, traced at the default head-sampling
rate, and traced at full detail (JSONL sink included in both) — answer
the same batched workload in ~1s slices whose order rotates every
round, and each arm's reported overhead is the median of its per-round
throughput ratios against the untraced slice.  Out-of-process, so the
load generator's GIL does not tax the serving loop and the delta is
the server-side tracing cost as deployed; time-adjacent rotated
rounds, so shared-runner throughput drift cancels out of each ratio
instead of masquerading as overhead.  The full bench asserts the
default configuration's overhead < 5% throughput, so the
``--trace-out`` lever stays safe to reach for in production; the
full-detail (``--trace-sample 1.0``) cost is reported unasserted.

A fourth section sweeps prefork core-scaling: real ``repro serve
--workers N`` subprocess trees (N in {1, 2, 4}; {1, 2} under
``--quick``) answer the same workload, with a byte-parity assert per
point against the in-process batched reference, per-worker ``smaps``
Pss samples proving the N workers map **one** physical model copy, and
a >=2.5x workers=4 throughput floor that is asserted only on hosts
with >=4 usable cores (recorded as ``checked``/``reason`` otherwise —
a fleet cannot out-scale its scheduler).

Run from the repo root::

    PYTHONPATH=src python tools/bench_serve.py

Numbers are environment-dependent; the committed ``BENCH_serve.json``
records the machine it was measured on.  CI runs ``--quick`` and asserts
only parity plus sanity floors, not speedups.
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import platform
import re
import signal
import statistics
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from repro.core.serialize import save_model
from repro.core.training import fit_skill_model
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.obs.trace import Tracer, set_tracer
from repro.serve import (
    FoldinConfig,
    FoldinWorker,
    ModelState,
    ServeConfig,
    ServerThread,
    SkillServer,
    WriteAheadLog,
)
from repro.synth import CookingConfig, generate_cooking

PRIORS = ("uniform", "empirical")

HEALTHZ_TIMEOUT_SECONDS = 30.0


def _wait_for_healthz(host: str, port: int, timeout: float = HEALTHZ_TIMEOUT_SECONDS):
    """Poll ``/healthz`` until the server answers 200, with a hard deadline.

    ``ServerThread.start`` returning only means the socket is bound; this
    proves the model actually loaded and the request path works before any
    timed measurement begins.  Raises ``RuntimeError`` naming the address
    and the last failure instead of letting the first measured request eat
    an unbounded connect/500 stall.
    """
    deadline = time.perf_counter() + timeout
    last_error: str = "no response"
    while time.perf_counter() < deadline:
        try:
            conn = http.client.HTTPConnection(host, port, timeout=5)
            try:
                conn.request("GET", "/healthz")
                response = conn.getresponse()
                response.read()
                if response.status == 200:
                    return
                last_error = f"HTTP {response.status}"
            finally:
                conn.close()
        except OSError as exc:
            last_error = str(exc)
        time.sleep(0.05)
    raise RuntimeError(
        f"server at {host}:{port} not healthy within {timeout:.0f}s "
        f"(last error: {last_error}); the bench cannot start"
    )


def _build_model(prefix: Path, *, users: int, quick: bool) -> tuple[dict, object]:
    """Fit a model big enough that per-request kernel cost is non-trivial."""
    dataset = generate_cooking(CookingConfig(num_users=users, seed=7))
    model = fit_skill_model(
        dataset.log,
        dataset.catalog,
        dataset.feature_set,
        num_levels=4,
        max_iterations=2 if quick else 6,
        init_min_actions=10,
    )
    save_model(model, prefix)
    structure = json.loads(prefix.with_suffix(".json").read_text(encoding="utf-8"))
    info = {
        "users": structure["users"],
        "items": structure["item_ids"],
        "num_actions": dataset.log.num_actions,
    }
    return info, dataset.log


def _workload(info: dict, num_requests: int) -> list[tuple[str, bytes]]:
    """A deterministic request list: (path, body) pairs, predict-heavy.

    Every read endpoint the batcher serves is represented — /predict,
    /difficulty, and both /recommend modes — so the parity asserts (and
    the prefork sweep's shared-memory residency check) cover the
    recommendation path with the same workload as everything else.
    """
    users = info["users"]
    items = info["items"]
    requests: list[tuple[str, bytes]] = []
    for r in range(num_requests):
        if r % 3 == 2:
            if (r // 3) % 2:
                if (r // 6) % 2:
                    body = {
                        "mode": "similar_harder",
                        "item": items[(r * 5) % len(items)],
                        "k": 8,
                        "margin": 0.0,
                    }
                else:
                    body = {
                        "user": users[(r * 3) % len(users)],
                        "k": 8,
                        "exclude": [items[(r * 7) % len(items)]],
                    }
                requests.append(("/recommend", json.dumps(body).encode("utf-8")))
                continue
            batch = [items[(r * 13 + j * 7) % len(items)] for j in range(8)]
            body = {"items": batch, "prior": PRIORS[r % 2]}
            requests.append(("/difficulty", json.dumps(body).encode("utf-8")))
        else:
            body = {
                "user": users[r % len(users)],
                "time": float(5 + r % 40),
                "k": 10,
                "item": items[(r * 11) % len(items)],
            }
            requests.append(("/predict", json.dumps(body).encode("utf-8")))
    return requests


def _recommend_workload(info: dict, num_requests: int) -> list[tuple[str, bytes]]:
    """A /recommend-only request list for the dedicated recommend section.

    Mostly upskill queries (the level-dedup path the batcher amortizes)
    with a similar_harder gather every fourth request, over varied users,
    exclude lists, and margins — enough shape diversity that byte parity
    across dispatch modes exercises every branch of the batch kernel.
    """
    users = info["users"]
    items = info["items"]
    requests: list[tuple[str, bytes]] = []
    for r in range(num_requests):
        if r % 4 == 3:
            body = {
                "mode": "similar_harder",
                "item": items[(r * 5) % len(items)],
                "k": 8,
                "margin": 0.1 * (r % 3),
            }
        else:
            body = {
                "user": users[(r * 3) % len(users)],
                "k": 10,
                "exclude": [
                    items[(r * 7 + j) % len(items)] for j in range(r % 3)
                ],
            }
        requests.append(("/recommend", json.dumps(body).encode("utf-8")))
    return requests


def _drive_workload(
    host: str, port: int, workload: list[tuple[str, bytes]], concurrency: int
) -> tuple[list[bytes | None], list[float], int, float]:
    """Fire the workload from ``concurrency`` client threads.

    Returns (bodies, per-request latencies, error count, wall seconds).
    """
    bodies: list[bytes | None] = [None] * len(workload)
    latencies: list[float] = [0.0] * len(workload)
    errors = [0]
    lock = threading.Lock()
    barrier = threading.Barrier(concurrency + 1)

    def client(worker: int) -> None:
        conn = http.client.HTTPConnection(host, port, timeout=120)
        barrier.wait()
        for index in range(worker, len(workload), concurrency):
            path, payload = workload[index]
            start = time.perf_counter()
            conn.request("POST", path, payload, {"Content-Type": "application/json"})
            response = conn.getresponse()
            body = response.read()
            latencies[index] = time.perf_counter() - start
            if response.status != 200:
                with lock:
                    errors[0] += 1
            bodies[index] = body
        conn.close()

    threads = [
        threading.Thread(target=client, args=(worker,), daemon=True)
        for worker in range(concurrency)
    ]
    for t in threads:
        t.start()
    barrier.wait()
    wall_start = time.perf_counter()
    for t in threads:
        t.join()
    wall = time.perf_counter() - wall_start
    return bodies, latencies, errors[0], wall


def _count_spans(trace_out: Path | None) -> int:
    # Count spans from the sink file, not Tracer.export(): the in-memory
    # ring is bounded and undercounts runs larger than its capacity.
    if trace_out is None:
        return 0
    with open(trace_out, encoding="utf-8") as fh:
        return sum(1 for line in fh if line.strip())


def _stats(
    *,
    max_batch: int,
    spans: int,
    wall: float,
    workload_size: int,
    latencies: list[float],
    errors: int,
    bodies: list[bytes | None],
    mean_batch_size: float | None = None,
    flushes: float | None = None,
) -> dict:
    ordered = sorted(latencies)
    return {
        "max_batch": max_batch,
        "spans": spans,
        "wall_seconds": wall,
        "throughput_rps": workload_size / wall,
        "p50_ms": 1000.0 * statistics.median(ordered),
        "p95_ms": 1000.0 * ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))],
        "mean_ms": 1000.0 * statistics.fmean(ordered),
        "mean_batch_size": mean_batch_size,
        "flushes": flushes,
        "errors": errors,
        "bodies": bodies,
    }


def _run_mode(
    prefix: Path,
    workload: list[tuple[str, bytes]],
    *,
    max_batch: int,
    concurrency: int,
    trace_out: Path | None = None,
) -> dict:
    """Serve the whole workload once in-process; returns stats + bodies.

    ``trace_out`` turns span tracing on for the run; otherwise the run
    uses the disabled default tracer, exactly like an untraced
    production server.
    """
    registry = MetricsRegistry()
    set_registry(registry)
    tracer = Tracer(enabled=trace_out is not None, out=trace_out)
    set_tracer(tracer)
    state = ModelState(prefix)
    server = SkillServer(
        state,
        ServeConfig(port=0, max_batch=max_batch, max_wait_ms=2.0, max_queue=4096,
                    timeout_seconds=60.0),
    )
    thread = ServerThread(server)
    host, port = thread.start()
    _wait_for_healthz(host, port)
    bodies, latencies, errors, wall = _drive_workload(
        host, port, workload, concurrency
    )
    thread.stop()
    tracer.close()
    set_tracer(Tracer())  # back to the disabled default for later runs

    batch_hist = registry.snapshot()["histograms"].get("serve.batch_size", {})
    return _stats(
        max_batch=max_batch,
        spans=_count_spans(trace_out),
        wall=wall,
        workload_size=len(workload),
        latencies=latencies,
        errors=errors,
        bodies=bodies,
        mean_batch_size=batch_hist.get("mean"),
        flushes=batch_hist.get("count"),
    )


class _ServeSubprocess:
    """A ``repro serve`` server in its own process.

    Used for the tracing-overhead measurement: with the server
    out-of-process (as in any real deployment) the workload delta
    reflects server-side tracing cost, not GIL contention between the
    in-process load generator threads and the serving event loop — which
    amplifies every microsecond of loop-thread work several-fold and
    would gate the budget on an artifact of this harness.
    """

    def __init__(
        self,
        prefix: Path,
        *,
        max_batch: int,
        trace_out: Path | None = None,
        trace_sample: float | None = None,
        workers: int | None = None,
        run_dir: Path | None = None,
    ) -> None:
        self.trace_out = trace_out
        argv = [
            sys.executable, "-u", "-m", "repro.cli", "serve", str(prefix),
            "--host", "127.0.0.1", "--port", "0",
            "--max-batch", str(max_batch), "--max-wait-ms", "2",
            "--max-queue", "4096", "--timeout", "60",
            "--log-level", "WARNING",
        ]
        if trace_out is not None:
            argv += ["--trace-out", str(trace_out)]
        if trace_sample is not None:
            argv += ["--trace-sample", str(trace_sample)]
        if workers is not None:
            argv += ["--workers", str(workers)]
        if run_dir is not None:
            argv += ["--run-dir", str(run_dir)]
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
        self._proc = subprocess.Popen(
            argv, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
            text=True, env=env,
        )
        match = None
        assert self._proc.stdout is not None
        for line in self._proc.stdout:
            match = re.search(r"on http://([\d.]+):(\d+)", line)
            if match:
                break
        if match is None:
            raise RuntimeError("serve subprocess exited before binding a port")
        self.host, self.port = match.group(1), int(match.group(2))
        _wait_for_healthz(self.host, self.port)

    def drive(self, workload: list[tuple[str, bytes]], concurrency: int):
        return _drive_workload(self.host, self.port, workload, concurrency)

    def stop(self) -> None:
        # SIGINT, not SIGTERM: the CLI's KeyboardInterrupt path flushes
        # and closes the span sink before exiting.
        self._proc.send_signal(signal.SIGINT)
        try:
            self._proc.wait(timeout=30)
        except subprocess.TimeoutExpired:  # pragma: no cover - hung server
            self._proc.kill()
            self._proc.wait()


def _segment_residency(pid: int, segment_names: set[str]) -> dict[str, dict]:
    """Per-segment Rss/Pss for one worker, from ``/proc/<pid>/smaps``.

    Proportional set size is the sharing proof: a segment mapped by N
    workers charges each ~size/N of Pss, while Rss reports the full
    mapping in every worker.  Returns ``{segment_name: {rss_kb, pss_kb}}``.
    """
    found: dict[str, dict] = {}
    current: str | None = None
    try:
        with open(f"/proc/{pid}/smaps", encoding="utf-8") as handle:
            for line in handle:
                # Mapping headers start with the hex address range; the
                # Key: value lines that follow belong to that mapping.
                if line[:1] in "0123456789abcdef" and "-" in line.split(" ", 1)[0]:
                    name = line.rsplit("/", 1)[-1].strip() if "/dev/shm/" in line else ""
                    current = name if name in segment_names else None
                elif current is not None:
                    # A worker can map a segment twice (its own attach plus
                    # the fork-inherited parent mapping); sum across them.
                    if line.startswith("Rss:"):
                        entry = found.setdefault(current, {})
                        entry["rss_kb"] = entry.get("rss_kb", 0) + int(line.split()[1])
                    elif line.startswith("Pss:"):
                        entry = found.setdefault(current, {})
                        entry["pss_kb"] = entry.get("pss_kb", 0) + int(line.split()[1])
    except OSError:
        pass  # non-linux /proc or worker exited between samples
    return found


def _bench_prefork(
    prefix: Path,
    workload: list[tuple[str, bytes]],
    reference_bodies: list[bytes | None],
    tmp: Path,
    *,
    concurrency: int,
    quick: bool,
) -> dict:
    """Core-scaling: the same batched workload against ``--workers N``.

    Each point boots a real ``repro serve --workers N`` subprocess tree,
    asserts byte-parity against the in-process batched reference, and
    samples per-worker smaps residency of the shared model segment.  The
    >=2.5x scaling floor is only *checked* when the host actually has
    >=4 usable cores — prefork cannot out-schedule the scheduler — and
    the result records whether it was.
    """
    points = [1, 2] if quick else [1, 2, 4]
    if quick:
        print("prefork: --quick caps the worker sweep at {1, 2} (not {1, 2, 4})")
    cores = len(os.sched_getaffinity(0))
    results: list[dict] = []
    for n in points:
        run_dir = tmp / f"prefork-w{n}"
        server = _ServeSubprocess(prefix, max_batch=64, workers=n, run_dir=run_dir)
        try:
            # Warm every worker's first-request path before timing.
            server.drive(workload[: max(64, len(workload) // 8)], concurrency)
            bodies, latencies, errors, wall = server.drive(workload, concurrency)
            assert errors == 0, f"workers={n}: {errors} HTTP errors"
            mismatches = sum(
                1 for a, b in zip(reference_bodies, bodies) if a != b
            )
            assert mismatches == 0, (
                f"workers={n}: {mismatches} responses differ from the "
                f"single-process batched reference"
            )
            worker_pids = []
            for reg_path in sorted((run_dir / "workers").glob("*.json")):
                try:
                    worker_pids.append(json.loads(reg_path.read_text())["pid"])
                except (OSError, ValueError, KeyError):
                    continue
            assert len(worker_pids) == n, (
                f"workers={n}: only {len(worker_pids)} registered"
            )
            segments = {
                name: os.path.getsize(f"/dev/shm/{name}")
                for name in os.listdir("/dev/shm")
                if name.startswith(f"repro_scores_model_{server._proc.pid}_")
            } if os.path.isdir("/dev/shm") else {}
            residency = {
                pid: _segment_residency(pid, set(segments)) for pid in worker_pids
            }
            stats = _stats(
                max_batch=64, spans=0, wall=wall, workload_size=len(workload),
                latencies=latencies, errors=errors, bodies=bodies,
            )
            stats.pop("bodies")
            point = {
                "workers": n,
                **{k: stats[k] for k in
                   ("wall_seconds", "throughput_rps", "p50_ms", "p95_ms",
                    "mean_ms", "errors")},
                "parity_mismatches": 0,
                "shm_segments": [
                    {
                        "name": name,
                        "size_bytes": size,
                        "per_worker": [
                            {"pid": pid, **residency[pid].get(name, {})}
                            for pid in worker_pids
                        ],
                    }
                    for name, size in sorted(segments.items())
                ],
            }
        finally:
            server.stop()
        results.append(point)
        shared = ""
        if point["shm_segments"]:
            seg = point["shm_segments"][0]
            pss = [w.get("pss_kb") for w in seg["per_worker"] if "pss_kb" in w]
            if pss:
                shared = (
                    f" shm {seg['size_bytes'] / 1024:.0f}kB, per-worker "
                    f"pss {'/'.join(str(p) for p in pss)}kB"
                )
        print(
            f"workers={n}  p50={point['p50_ms']:7.2f}ms "
            f"throughput={point['throughput_rps']:7.1f} req/s{shared}"
        )
    # One physical copy: with N workers mapping one segment, each
    # worker's proportional share is ~size/N, so the per-worker Pss sum
    # stays ~one segment size instead of N copies.  Checked for the
    # largest fleet where /proc gave us numbers.
    for point in reversed(results):
        if point["workers"] < 2 or not point["shm_segments"]:
            continue
        seg = point["shm_segments"][0]
        pss_kb = [w["pss_kb"] for w in seg["per_worker"] if "pss_kb" in w]
        if len(pss_kb) == point["workers"]:
            assert sum(pss_kb) * 1024 < 1.5 * seg["size_bytes"] + 1024 * len(pss_kb), (
                f"workers={point['workers']}: summed Pss "
                f"{sum(pss_kb)}kB looks like private copies of a "
                f"{seg['size_bytes']}B segment"
            )
            break
    by_workers = {p["workers"]: p["throughput_rps"] for p in results}
    scaling_checked = cores >= 4 and 4 in by_workers
    summary = {
        "points": results,
        "cores": cores,
        "speedup_vs_single": {
            str(n): by_workers[n] / by_workers[1] for n in sorted(by_workers) if n > 1
        },
        "scaling_assert": {
            "required_at_workers_4": 2.5,
            "checked": scaling_checked,
            "reason": None if scaling_checked else (
                f"host exposes {cores} usable core(s); a prefork fleet "
                "cannot scale past the scheduler"
            ),
        },
    }
    if scaling_checked:
        speedup = by_workers[4] / by_workers[1]
        assert speedup >= 2.5, (
            f"workers=4 throughput is {speedup:.2f}x single-worker "
            f"(>=2.5x required on a {cores}-core host)"
        )
    return summary


def _bench_ingest(
    prefix: Path,
    info: dict,
    base_log,
    wal_dir: Path,
    *,
    concurrency: int,
    events: int,
    batch_events: int = 16,
) -> dict:
    """Sustained ``POST /ingest`` journaling rate, then fold-in latency.

    Clients push the whole event stream through the live server (durable
    WAL appends, fsync per flush); the fold-in worker then drains it to a
    published artifact.  Both halves read their timings off the metrics
    registry the server ran under.
    """
    registry = MetricsRegistry()
    set_registry(registry)
    wal = WriteAheadLog(wal_dir)
    worker = FoldinWorker(
        wal, prefix, base_log, config=FoldinConfig(interval_seconds=3600.0)
    )
    worker.bootstrap()
    server = SkillServer(
        ModelState(prefix),
        ServeConfig(port=0, max_batch=64, max_wait_ms=2.0, max_queue=4096,
                    timeout_seconds=60.0),
        wal=wal,
        foldin=worker,
    )
    thread = ServerThread(server)
    host, port = thread.start()
    _wait_for_healthz(host, port)

    users = info["users"]
    items = info["items"]
    batches = [
        json.dumps(
            {
                "events": [
                    {
                        "user": users[(start + j) % len(users)],
                        "item": items[(start * 7 + j * 3) % len(items)],
                        "time": 1_000.0 + start + j,
                    }
                    for j in range(min(batch_events, events - start))
                ]
            }
        ).encode("utf-8")
        for start in range(0, events, batch_events)
    ]
    errors = [0]
    lock = threading.Lock()
    barrier = threading.Barrier(concurrency + 1)

    def client(worker_index: int) -> None:
        conn = http.client.HTTPConnection(host, port, timeout=120)
        barrier.wait()
        for index in range(worker_index, len(batches), concurrency):
            conn.request(
                "POST", "/ingest", batches[index],
                {"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            response.read()
            if response.status != 200:
                with lock:
                    errors[0] += 1
        conn.close()

    threads = [
        threading.Thread(target=client, args=(index,), daemon=True)
        for index in range(concurrency)
    ]
    for t in threads:
        t.start()
    barrier.wait()
    wall_start = time.perf_counter()
    for t in threads:
        t.join()
    ingest_wall = time.perf_counter() - wall_start
    assert errors[0] == 0, f"{errors[0]} ingest requests failed"
    assert wal.durable_seq == events, "not every event was journaled"

    fold_start = time.perf_counter()
    worker.drain_now(timeout=600.0)
    fold_wall = time.perf_counter() - fold_start
    thread.stop()
    worker.stop()
    wal.close()

    snapshot = registry.snapshot()
    append_hist = snapshot["histograms"].get("ingest.append_seconds", {})
    fold_hist = snapshot["histograms"].get("foldin.fold_seconds", {})
    return {
        "events": events,
        "batch_events": batch_events,
        "concurrency": concurrency,
        "wall_seconds": ingest_wall,
        "events_per_sec": events / ingest_wall,
        "append_p50_ms": 1000.0 * append_hist.get("p50", 0.0),
        "append_p95_ms": 1000.0 * append_hist.get("p95", 0.0),
        "foldin": {
            "wall_seconds": fold_wall,
            "folds": int(snapshot["counters"].get("foldin.folds", 0)),
            "events_applied": int(
                snapshot["counters"].get("foldin.events_applied", 0)
            ),
            "fold_seconds_mean": fold_hist.get("mean", 0.0),
            "fold_seconds_p95": fold_hist.get("p95", 0.0),
        },
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--users", type=int, default=400)
    parser.add_argument("--requests", type=int, default=2048)
    parser.add_argument("--concurrency", type=int, default=32)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--out", default="BENCH_serve.json")
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: small model/workload, parity + sanity asserts only",
    )
    args = parser.parse_args()
    if args.quick:
        args.users = min(args.users, 80)
        args.requests = min(args.requests, 256)
        args.repeats = 1
    if args.concurrency < 32:
        parser.error("--concurrency must be >= 32 (the scenario being served)")

    with tempfile.TemporaryDirectory() as tmp:
        prefix = Path(tmp) / "bench_model"
        print(f"fitting bench model ({args.users} users)...")
        info, base_log = _build_model(prefix, users=args.users, quick=args.quick)
        workload = _workload(info, args.requests)
        print(
            f"workload: {len(workload)} requests "
            f"({sum(1 for p, _ in workload if p == '/predict')} predict / "
            f"{sum(1 for p, _ in workload if p == '/difficulty')} difficulty / "
            f"{sum(1 for p, _ in workload if p == '/recommend')} recommend) "
            f"at concurrency {args.concurrency}"
        )

        modes = {"sequential": 1, "batched": 64}
        results: dict[str, dict] = {}
        for name, max_batch in modes.items():
            best: dict | None = None
            for _ in range(args.repeats):
                run = _run_mode(
                    prefix, workload,
                    max_batch=max_batch, concurrency=args.concurrency,
                )
                if best is None or run["wall_seconds"] < best["wall_seconds"]:
                    best = run
            assert best is not None
            results[name] = best
            print(
                f"{name:10s} p50={best['p50_ms']:7.2f}ms p95={best['p95_ms']:7.2f}ms "
                f"throughput={best['throughput_rps']:7.1f} req/s "
                f"mean_batch={best['mean_batch_size'] or 1:.1f}"
            )

        # Difficulty-targeted recommendation: the same two dispatch modes
        # over a /recommend-only workload.  Upskill queries share one
        # score evaluation per distinct level in a flush and
        # similar_harder is a pure index gather, so batching should win
        # here too — and exactly as for /predict, it must win without
        # changing a single response byte.
        recommend_workload = _recommend_workload(
            info, max(256, args.requests // 2)
        )
        print(f"recommend: {len(recommend_workload)} /recommend requests...")
        recommend_results: dict[str, dict] = {}
        for name, max_batch in modes.items():
            best = None
            for _ in range(args.repeats):
                run = _run_mode(
                    prefix, recommend_workload,
                    max_batch=max_batch, concurrency=args.concurrency,
                )
                if best is None or run["wall_seconds"] < best["wall_seconds"]:
                    best = run
            assert best is not None
            recommend_results[name] = best
            print(
                f"recommend/{name:10s} p50={best['p50_ms']:7.2f}ms "
                f"p95={best['p95_ms']:7.2f}ms "
                f"throughput={best['throughput_rps']:7.1f} req/s "
                f"mean_batch={best['mean_batch_size'] or 1:.1f}"
            )
        recommend_mismatches = sum(
            1 for a, b in zip(
                recommend_results["sequential"]["bodies"],
                recommend_results["batched"]["bodies"],
            )
            if a != b
        )
        assert recommend_mismatches == 0, (
            f"{recommend_mismatches} /recommend responses differ between modes"
        )
        assert recommend_results["sequential"]["errors"] == 0, (
            "sequential /recommend mode had HTTP errors"
        )
        assert recommend_results["batched"]["errors"] == 0, (
            "batched /recommend mode had HTTP errors"
        )
        assert recommend_results["batched"]["mean_batch_size"] > 1.0, (
            "/recommend batched mode never coalesced"
        )
        print(
            f"recommend parity: all {len(recommend_workload)} response "
            f"bodies byte-identical across modes"
        )

        # Tracing overhead: the same batched workload with span tracing on
        # (JSONL sink included — the production cost, not just the ring).
        # Tracing must be a diagnosis lever, never a throughput one.
        #
        # Methodology: three long-lived server subprocesses — untraced,
        # traced at the default head-sampling rate, and traced at full
        # detail (out-of-process so the load generator's GIL does not tax
        # the serving loop, see _ServeSubprocess) — answer the same
        # workload in ~1s slices.  Machine throughput on shared runners
        # drifts by double-digit percent over tens of seconds, so
        # back-to-back whole-run comparisons cannot resolve a few-percent
        # effect.  Slices are grouped into rounds whose server order
        # rotates every round, so monotonic drift cannot systematically
        # tax one arm, and each arm's overhead is the median of its
        # per-round throughput ratios against the untraced slice of the
        # same round — comparisons between slices adjacent in time, where
        # drift is smallest.
        #
        # The <5% budget is asserted for the *default* configuration
        # (--trace-out with the default --trace-sample): that is what
        # production reaches for.  Full-detail tracing (--trace-sample
        # 1.0) is measured and reported alongside, unasserted — on a
        # single-core host its per-request span work is expected to cost
        # more than the budget allows.
        round_count = max(args.repeats, 1 if args.quick else 12)
        trace_path = Path(tmp) / "bench_spans.jsonl"
        full_trace_path = Path(tmp) / "bench_spans_full.jsonl"
        plain_server = _ServeSubprocess(prefix, max_batch=64)
        traced_server = _ServeSubprocess(prefix, max_batch=64, trace_out=trace_path)
        full_server = _ServeSubprocess(
            prefix, max_batch=64, trace_out=full_trace_path, trace_sample=1.0
        )
        servers = [plain_server, traced_server, full_server]
        runs: dict[int, list[dict]] = {id(server): [] for server in servers}
        try:
            for server in servers:  # warm every arm
                server.drive(workload[: max(64, len(workload) // 8)],
                             args.concurrency)
            for round_index in range(round_count):
                order = servers[round_index % 3:] + servers[:round_index % 3]
                for server in order:
                    bodies, latencies, errors, wall = server.drive(
                        workload, args.concurrency
                    )
                    runs[id(server)].append(
                        _stats(
                            max_batch=64, spans=0, wall=wall,
                            workload_size=len(workload), latencies=latencies,
                            errors=errors, bodies=bodies,
                        )
                    )
        finally:
            for server in servers:
                server.stop()
        plain_runs = runs[id(plain_server)]
        traced_runs = runs[id(traced_server)]
        full_runs = runs[id(full_server)]
        traced_best = min(traced_runs, key=lambda run: run["wall_seconds"])
        traced_best["spans"] = _count_spans(trace_path)
        full_spans = _count_spans(full_trace_path)
        assert all(
            r["errors"] == 0 for arm in runs.values() for r in arm
        ), "tracing A/B runs had HTTP errors"
        assert traced_best["spans"] > 0, "tracing was on but produced no spans"
        # Full detail records ~3 spans/request; the sampled default must
        # journal strictly fewer while still seeing every request.
        assert full_spans > traced_best["spans"], (
            f"full-detail tracing wrote {full_spans} spans, sampled wrote "
            f"{traced_best['spans']} — sampling is not thinning span detail"
        )
        for label, arm_runs in (("sampled", traced_runs), ("full", full_runs)):
            mismatches = sum(
                1 for a, b in zip(
                    results["batched"]["bodies"],
                    min(arm_runs, key=lambda run: run["wall_seconds"])["bodies"],
                )
                if a != b
            )
            assert mismatches == 0, (
                f"{mismatches} responses differ with {label} tracing enabled"
            )
        plain_median = statistics.median(r["throughput_rps"] for r in plain_runs)
        traced_median = statistics.median(r["throughput_rps"] for r in traced_runs)

        def _overhead(arm_runs: list[dict]) -> float:
            return 100.0 * (
                1.0
                - statistics.median(
                    arm["throughput_rps"] / plain["throughput_rps"]
                    for arm, plain in zip(arm_runs, plain_runs)
                )
            )

        overhead_pct = _overhead(traced_runs)
        full_overhead_pct = _overhead(full_runs)
        print(
            f"traced     p50={traced_best['p50_ms']:7.2f}ms "
            f"p95={traced_best['p95_ms']:7.2f}ms "
            f"throughput={traced_median:7.1f} req/s "
            f"(untraced {plain_median:7.1f} req/s, {traced_best['spans']} spans, "
            f"overhead {overhead_pct:+.1f}% over {round_count} rotated rounds; "
            f"full detail {full_overhead_pct:+.1f}%, {full_spans} spans)"
        )
        if not args.quick:
            # Quick CI runs are too small/noisy for a tight bound; the full
            # bench enforces the documented <5% tracing-overhead budget.
            assert overhead_pct < 5.0, (
                f"tracing overhead {overhead_pct:.1f}% exceeds the 5% budget"
            )

        # Prefork core-scaling: same workload, real --workers N process
        # trees, byte-parity per point.  Before ingest — fold-in rewrites
        # the artifact, which would invalidate the parity reference.
        print("prefork: core-scaling sweep...")
        prefork = _bench_prefork(
            prefix, workload, results["batched"]["bodies"], Path(tmp),
            concurrency=args.concurrency, quick=args.quick,
        )

        # Streaming loop: durable journaling rate, then fold-in latency.
        # Runs after the parity modes — fold-in republishes the artifact.
        ingest_events = 512 if args.quick else 4096
        print(f"ingest: journaling {ingest_events} events...")
        ingest = _bench_ingest(
            prefix, info, base_log, Path(tmp) / "wal",
            concurrency=args.concurrency, events=ingest_events,
        )
        print(
            f"ingest     {ingest['events_per_sec']:7.1f} events/s "
            f"(append p95={ingest['append_p95_ms']:.2f}ms), "
            f"fold-in {ingest['foldin']['folds']} folds "
            f"mean={ingest['foldin']['fold_seconds_mean']:.3f}s"
        )

    # Parity: coalesced batching must be semantically invisible.
    mismatches = sum(
        1 for a, b in zip(results["sequential"]["bodies"], results["batched"]["bodies"])
        if a != b
    )
    assert mismatches == 0, f"{mismatches} responses differ between modes"
    assert results["sequential"]["errors"] == 0, "sequential mode had HTTP errors"
    assert results["batched"]["errors"] == 0, "batched mode had HTTP errors"
    assert results["batched"]["mean_batch_size"] > 1.0, (
        "batched mode never coalesced — raise concurrency or workload size"
    )
    print(f"parity: all {len(workload)} response bodies byte-identical across modes")

    for mode in results.values():
        mode.pop("bodies")
    for mode in recommend_results.values():
        mode.pop("bodies")
    traced_best.pop("bodies")
    payload = {
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cores": len(os.sched_getaffinity(0)),
        },
        "workload": {
            "model_users": args.users,
            "model_items": len(info["items"]),
            "model_actions": info["num_actions"],
            "requests": args.requests,
            "concurrency": args.concurrency,
            "repeats": args.repeats,
            "quick": args.quick,
        },
        "sequential": results["sequential"],
        "batched": results["batched"],
        "speedup": {
            "p50": results["sequential"]["p50_ms"] / results["batched"]["p50_ms"],
            "p95": results["sequential"]["p95_ms"] / results["batched"]["p95_ms"],
            "throughput": (
                results["batched"]["throughput_rps"]
                / results["sequential"]["throughput_rps"]
            ),
        },
        "parity": {"responses_compared": len(workload), "mismatches": 0},
        "recommend": {
            "requests": len(recommend_workload),
            "sequential": recommend_results["sequential"],
            "batched": recommend_results["batched"],
            "speedup": {
                "p50": (
                    recommend_results["sequential"]["p50_ms"]
                    / recommend_results["batched"]["p50_ms"]
                ),
                "p95": (
                    recommend_results["sequential"]["p95_ms"]
                    / recommend_results["batched"]["p95_ms"]
                ),
                "throughput": (
                    recommend_results["batched"]["throughput_rps"]
                    / recommend_results["sequential"]["throughput_rps"]
                ),
            },
            "parity": {
                "responses_compared": len(recommend_workload),
                "mismatches": 0,
            },
        },
        "tracing": {
            "sample": 0.1,
            "throughput_rps": traced_median,
            "p50_ms": traced_best["p50_ms"],
            "p95_ms": traced_best["p95_ms"],
            "spans": traced_best["spans"],
            "overhead_pct": overhead_pct,
            "untraced_throughput_rps": plain_median,
            "slice_throughputs_rps": {
                "untraced": [round(r["throughput_rps"], 1) for r in plain_runs],
                "traced": [round(r["throughput_rps"], 1) for r in traced_runs],
                "full_detail": [round(r["throughput_rps"], 1) for r in full_runs],
            },
            "budget_pct": 5.0,
            # --trace-sample 1.0: unasserted, for reference only.
            "full_detail": {
                "sample": 1.0,
                "overhead_pct": full_overhead_pct,
                "spans": full_spans,
            },
        },
        "prefork": prefork,
        "ingest": ingest,
    }
    Path(args.out).write_text(
        json.dumps(payload, indent=1) + "\n", encoding="utf-8"
    )
    print(f"wrote {args.out}")
    if not args.quick:
        speedup = payload["speedup"]
        print(
            f"speedups vs sequential: p50 {speedup['p50']:.2f}x, "
            f"p95 {speedup['p95']:.2f}x, throughput {speedup['throughput']:.2f}x"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
