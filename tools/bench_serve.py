#!/usr/bin/env python
"""Benchmark the serving subsystem and write ``BENCH_serve.json``.

One measurement, the one the serving layer exists for: a closed-loop load
generator (``--concurrency`` client threads, each with a persistent
``http.client`` connection, each issuing its share of a fixed workload of
``/predict`` and ``/difficulty`` requests) against the same in-process
:class:`~repro.serve.server.SkillServer` in two modes:

- **sequential** — ``max_batch=1``: every request takes its own
  ``predict_items`` / ``difficulty_array`` kernel call, through the same
  batcher code path (the coalescing window degenerates to size-1 flushes);
- **batched** — ``max_batch=64``, ``max_wait_ms=2``: concurrent requests
  coalesce into shared kernel calls.

Both modes answer the *identical* workload; the script asserts every
response body is **byte-identical** across modes before reporting numbers
(batching is a throughput/latency lever, never a semantic one — JSON float
repr is shortest-round-trip, so byte equality means bit equality).

Run from the repo root::

    PYTHONPATH=src python tools/bench_serve.py

Numbers are environment-dependent; the committed ``BENCH_serve.json``
records the machine it was measured on.  CI runs ``--quick`` and asserts
only parity plus sanity floors, not speedups.
"""

from __future__ import annotations

import argparse
import http.client
import json
import platform
import statistics
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from repro.core.serialize import save_model
from repro.core.training import fit_skill_model
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.serve import (
    FoldinConfig,
    FoldinWorker,
    ModelState,
    ServeConfig,
    ServerThread,
    SkillServer,
    WriteAheadLog,
)
from repro.synth import CookingConfig, generate_cooking

PRIORS = ("uniform", "empirical")

HEALTHZ_TIMEOUT_SECONDS = 30.0


def _wait_for_healthz(host: str, port: int, timeout: float = HEALTHZ_TIMEOUT_SECONDS):
    """Poll ``/healthz`` until the server answers 200, with a hard deadline.

    ``ServerThread.start`` returning only means the socket is bound; this
    proves the model actually loaded and the request path works before any
    timed measurement begins.  Raises ``RuntimeError`` naming the address
    and the last failure instead of letting the first measured request eat
    an unbounded connect/500 stall.
    """
    deadline = time.perf_counter() + timeout
    last_error: str = "no response"
    while time.perf_counter() < deadline:
        try:
            conn = http.client.HTTPConnection(host, port, timeout=5)
            try:
                conn.request("GET", "/healthz")
                response = conn.getresponse()
                response.read()
                if response.status == 200:
                    return
                last_error = f"HTTP {response.status}"
            finally:
                conn.close()
        except OSError as exc:
            last_error = str(exc)
        time.sleep(0.05)
    raise RuntimeError(
        f"server at {host}:{port} not healthy within {timeout:.0f}s "
        f"(last error: {last_error}); the bench cannot start"
    )


def _build_model(prefix: Path, *, users: int, quick: bool) -> tuple[dict, object]:
    """Fit a model big enough that per-request kernel cost is non-trivial."""
    dataset = generate_cooking(CookingConfig(num_users=users, seed=7))
    model = fit_skill_model(
        dataset.log,
        dataset.catalog,
        dataset.feature_set,
        num_levels=4,
        max_iterations=2 if quick else 6,
        init_min_actions=10,
    )
    save_model(model, prefix)
    structure = json.loads(prefix.with_suffix(".json").read_text(encoding="utf-8"))
    info = {
        "users": structure["users"],
        "items": structure["item_ids"],
        "num_actions": dataset.log.num_actions,
    }
    return info, dataset.log


def _workload(info: dict, num_requests: int) -> list[tuple[str, bytes]]:
    """A deterministic request list: (path, body) pairs, predict-heavy."""
    users = info["users"]
    items = info["items"]
    requests: list[tuple[str, bytes]] = []
    for r in range(num_requests):
        if r % 3 == 2:
            batch = [items[(r * 13 + j * 7) % len(items)] for j in range(8)]
            body = {"items": batch, "prior": PRIORS[r % 2]}
            requests.append(("/difficulty", json.dumps(body).encode("utf-8")))
        else:
            body = {
                "user": users[r % len(users)],
                "time": float(5 + r % 40),
                "k": 10,
                "item": items[(r * 11) % len(items)],
            }
            requests.append(("/predict", json.dumps(body).encode("utf-8")))
    return requests


def _run_mode(
    prefix: Path,
    workload: list[tuple[str, bytes]],
    *,
    max_batch: int,
    concurrency: int,
) -> dict:
    """Serve the whole workload once; returns stats + response bodies."""
    registry = MetricsRegistry()
    set_registry(registry)
    state = ModelState(prefix)
    server = SkillServer(
        state,
        ServeConfig(port=0, max_batch=max_batch, max_wait_ms=2.0, max_queue=4096,
                    timeout_seconds=60.0),
    )
    thread = ServerThread(server)
    host, port = thread.start()
    _wait_for_healthz(host, port)

    bodies: list[bytes | None] = [None] * len(workload)
    latencies: list[float] = [0.0] * len(workload)
    errors = [0]
    lock = threading.Lock()
    barrier = threading.Barrier(concurrency + 1)

    def client(worker: int) -> None:
        conn = http.client.HTTPConnection(host, port, timeout=120)
        barrier.wait()
        for index in range(worker, len(workload), concurrency):
            path, payload = workload[index]
            start = time.perf_counter()
            conn.request("POST", path, payload, {"Content-Type": "application/json"})
            response = conn.getresponse()
            body = response.read()
            latencies[index] = time.perf_counter() - start
            if response.status != 200:
                with lock:
                    errors[0] += 1
            bodies[index] = body
        conn.close()

    threads = [
        threading.Thread(target=client, args=(worker,), daemon=True)
        for worker in range(concurrency)
    ]
    for t in threads:
        t.start()
    barrier.wait()
    wall_start = time.perf_counter()
    for t in threads:
        t.join()
    wall = time.perf_counter() - wall_start
    thread.stop()

    batch_hist = registry.snapshot()["histograms"].get("serve.batch_size", {})
    ordered = sorted(latencies)
    return {
        "max_batch": max_batch,
        "wall_seconds": wall,
        "throughput_rps": len(workload) / wall,
        "p50_ms": 1000.0 * statistics.median(ordered),
        "p95_ms": 1000.0 * ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))],
        "mean_ms": 1000.0 * statistics.fmean(ordered),
        "mean_batch_size": batch_hist.get("mean"),
        "flushes": batch_hist.get("count"),
        "errors": errors[0],
        "bodies": bodies,
    }


def _bench_ingest(
    prefix: Path,
    info: dict,
    base_log,
    wal_dir: Path,
    *,
    concurrency: int,
    events: int,
    batch_events: int = 16,
) -> dict:
    """Sustained ``POST /ingest`` journaling rate, then fold-in latency.

    Clients push the whole event stream through the live server (durable
    WAL appends, fsync per flush); the fold-in worker then drains it to a
    published artifact.  Both halves read their timings off the metrics
    registry the server ran under.
    """
    registry = MetricsRegistry()
    set_registry(registry)
    wal = WriteAheadLog(wal_dir)
    worker = FoldinWorker(
        wal, prefix, base_log, config=FoldinConfig(interval_seconds=3600.0)
    )
    worker.bootstrap()
    server = SkillServer(
        ModelState(prefix),
        ServeConfig(port=0, max_batch=64, max_wait_ms=2.0, max_queue=4096,
                    timeout_seconds=60.0),
        wal=wal,
        foldin=worker,
    )
    thread = ServerThread(server)
    host, port = thread.start()
    _wait_for_healthz(host, port)

    users = info["users"]
    items = info["items"]
    batches = [
        json.dumps(
            {
                "events": [
                    {
                        "user": users[(start + j) % len(users)],
                        "item": items[(start * 7 + j * 3) % len(items)],
                        "time": 1_000.0 + start + j,
                    }
                    for j in range(min(batch_events, events - start))
                ]
            }
        ).encode("utf-8")
        for start in range(0, events, batch_events)
    ]
    errors = [0]
    lock = threading.Lock()
    barrier = threading.Barrier(concurrency + 1)

    def client(worker_index: int) -> None:
        conn = http.client.HTTPConnection(host, port, timeout=120)
        barrier.wait()
        for index in range(worker_index, len(batches), concurrency):
            conn.request(
                "POST", "/ingest", batches[index],
                {"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            response.read()
            if response.status != 200:
                with lock:
                    errors[0] += 1
        conn.close()

    threads = [
        threading.Thread(target=client, args=(index,), daemon=True)
        for index in range(concurrency)
    ]
    for t in threads:
        t.start()
    barrier.wait()
    wall_start = time.perf_counter()
    for t in threads:
        t.join()
    ingest_wall = time.perf_counter() - wall_start
    assert errors[0] == 0, f"{errors[0]} ingest requests failed"
    assert wal.durable_seq == events, "not every event was journaled"

    fold_start = time.perf_counter()
    worker.drain_now(timeout=600.0)
    fold_wall = time.perf_counter() - fold_start
    thread.stop()
    worker.stop()
    wal.close()

    snapshot = registry.snapshot()
    append_hist = snapshot["histograms"].get("ingest.append_seconds", {})
    fold_hist = snapshot["histograms"].get("foldin.fold_seconds", {})
    return {
        "events": events,
        "batch_events": batch_events,
        "concurrency": concurrency,
        "wall_seconds": ingest_wall,
        "events_per_sec": events / ingest_wall,
        "append_p50_ms": 1000.0 * append_hist.get("p50", 0.0),
        "append_p95_ms": 1000.0 * append_hist.get("p95", 0.0),
        "foldin": {
            "wall_seconds": fold_wall,
            "folds": int(snapshot["counters"].get("foldin.folds", 0)),
            "events_applied": int(
                snapshot["counters"].get("foldin.events_applied", 0)
            ),
            "fold_seconds_mean": fold_hist.get("mean", 0.0),
            "fold_seconds_p95": fold_hist.get("p95", 0.0),
        },
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--users", type=int, default=400)
    parser.add_argument("--requests", type=int, default=2048)
    parser.add_argument("--concurrency", type=int, default=32)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--out", default="BENCH_serve.json")
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: small model/workload, parity + sanity asserts only",
    )
    args = parser.parse_args()
    if args.quick:
        args.users = min(args.users, 80)
        args.requests = min(args.requests, 256)
        args.repeats = 1
    if args.concurrency < 32:
        parser.error("--concurrency must be >= 32 (the scenario being served)")

    with tempfile.TemporaryDirectory() as tmp:
        prefix = Path(tmp) / "bench_model"
        print(f"fitting bench model ({args.users} users)...")
        info, base_log = _build_model(prefix, users=args.users, quick=args.quick)
        workload = _workload(info, args.requests)
        print(
            f"workload: {len(workload)} requests "
            f"({sum(1 for p, _ in workload if p == '/predict')} predict / "
            f"{sum(1 for p, _ in workload if p == '/difficulty')} difficulty) "
            f"at concurrency {args.concurrency}"
        )

        modes = {"sequential": 1, "batched": 64}
        results: dict[str, dict] = {}
        for name, max_batch in modes.items():
            best: dict | None = None
            for _ in range(args.repeats):
                run = _run_mode(
                    prefix, workload,
                    max_batch=max_batch, concurrency=args.concurrency,
                )
                if best is None or run["wall_seconds"] < best["wall_seconds"]:
                    best = run
            assert best is not None
            results[name] = best
            print(
                f"{name:10s} p50={best['p50_ms']:7.2f}ms p95={best['p95_ms']:7.2f}ms "
                f"throughput={best['throughput_rps']:7.1f} req/s "
                f"mean_batch={best['mean_batch_size'] or 1:.1f}"
            )

        # Streaming loop: durable journaling rate, then fold-in latency.
        # Runs after the parity modes — fold-in republishes the artifact.
        ingest_events = 512 if args.quick else 4096
        print(f"ingest: journaling {ingest_events} events...")
        ingest = _bench_ingest(
            prefix, info, base_log, Path(tmp) / "wal",
            concurrency=args.concurrency, events=ingest_events,
        )
        print(
            f"ingest     {ingest['events_per_sec']:7.1f} events/s "
            f"(append p95={ingest['append_p95_ms']:.2f}ms), "
            f"fold-in {ingest['foldin']['folds']} folds "
            f"mean={ingest['foldin']['fold_seconds_mean']:.3f}s"
        )

    # Parity: coalesced batching must be semantically invisible.
    mismatches = sum(
        1 for a, b in zip(results["sequential"]["bodies"], results["batched"]["bodies"])
        if a != b
    )
    assert mismatches == 0, f"{mismatches} responses differ between modes"
    assert results["sequential"]["errors"] == 0, "sequential mode had HTTP errors"
    assert results["batched"]["errors"] == 0, "batched mode had HTTP errors"
    assert results["batched"]["mean_batch_size"] > 1.0, (
        "batched mode never coalesced — raise concurrency or workload size"
    )
    print(f"parity: all {len(workload)} response bodies byte-identical across modes")

    for mode in results.values():
        mode.pop("bodies")
    payload = {
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "workload": {
            "model_users": args.users,
            "model_items": len(info["items"]),
            "model_actions": info["num_actions"],
            "requests": args.requests,
            "concurrency": args.concurrency,
            "repeats": args.repeats,
            "quick": args.quick,
        },
        "sequential": results["sequential"],
        "batched": results["batched"],
        "speedup": {
            "p50": results["sequential"]["p50_ms"] / results["batched"]["p50_ms"],
            "p95": results["sequential"]["p95_ms"] / results["batched"]["p95_ms"],
            "throughput": (
                results["batched"]["throughput_rps"]
                / results["sequential"]["throughput_rps"]
            ),
        },
        "parity": {"responses_compared": len(workload), "mismatches": 0},
        "ingest": ingest,
    }
    Path(args.out).write_text(
        json.dumps(payload, indent=1) + "\n", encoding="utf-8"
    )
    print(f"wrote {args.out}")
    if not args.quick:
        speedup = payload["speedup"]
        print(
            f"speedups vs sequential: p50 {speedup['p50']:.2f}x, "
            f"p95 {speedup['p95']:.2f}x, throughput {speedup['throughput']:.2f}x"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
