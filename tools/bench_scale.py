#!/usr/bin/env python
"""Benchmark out-of-core sharded training and write ``BENCH_scale.json``.

Two questions, answered with one grid (users × workers):

- **Does it scale?**  Each point generates a synthetic corpus straight
  into a columnar store (``repro.synth.generate_synthetic_store``; the
  corpus never exists in RAM), then runs the sharded map-reduce trainer
  (``repro.core.shard.ShardedTrainer``) over it for a fixed number of
  iterations, reporting wall time, E-step throughput (events/s = actions
  × iterations / fit seconds), and **peak RSS**.  The headline point is
  1M users / ~100M actions: peak RSS must stay far below the corpus
  size, because shards are loaded one at a time and reduced to integer
  count matrices.
- **Is it still exact?**  A parity block fits one small corpus three
  ways — in-RAM trainer, sharded serial, sharded pooled — and asserts
  the LL traces and final assignments are bit-identical before any
  number is reported.  Sharding is a memory/throughput lever, never a
  semantic one.

Every grid point runs in its own subprocess (``--run-point`` is the
internal worker mode) so ``ru_maxrss`` — a process-lifetime high-water
mark — measures that point alone, not the largest point run so far.

Run from the repo root::

    PYTHONPATH=src python tools/bench_scale.py            # full grid, ~5 min
    PYTHONPATH=src python tools/bench_scale.py --tiny     # CI smoke, seconds

Numbers are environment-dependent; the committed ``BENCH_scale.json``
records the machine it was measured on.  CI runs ``--tiny`` and asserts
parity plus sanity floors, not absolute throughput.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = str(REPO_ROOT / "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

import numpy as np  # noqa: E402

# The big grid points only assert the RSS-vs-corpus ratio once the corpus
# dwarfs the interpreter's ~100MB baseline footprint.
RSS_ASSERT_MIN_CORPUS = 200 * 1024 * 1024

FULL_POINTS = [
    # users, mean sequence length, workers, iterations
    (10_000, 100.0, 1, 3),
    (10_000, 100.0, 2, 3),
    (100_000, 100.0, 1, 3),
    (100_000, 100.0, 2, 3),
    (1_000_000, 100.0, 1, 3),  # the ≥100M-action headline point
]

TINY_POINTS = [
    (1_000, 20.0, 1, 2),
    (1_000, 20.0, 2, 2),
]


def _run_point(spec: dict) -> int:
    """Worker mode: one grid point in a fresh process, JSON on stdout."""
    from repro.core.shard import ShardedTrainer
    from repro.core.training import TrainerConfig
    from repro.obs.resource import peak_rss_bytes
    from repro.synth import SyntheticConfig, generate_synthetic_store

    config = SyntheticConfig(
        num_users=spec["users"],
        num_items=spec["items"],
        num_levels=spec["levels"],
        mean_sequence_length=spec["mean_sequence_length"],
        seed=spec["seed"],
    )
    store_path = Path(spec["dir"]) / "corpus.store"
    t0 = time.perf_counter()
    generated = generate_synthetic_store(
        config, store_path, users_per_shard=spec["users_per_shard"]
    )
    generate_seconds = time.perf_counter() - t0
    store = generated.store

    trainer_config = TrainerConfig(
        num_levels=spec["levels"],
        max_iterations=spec["iterations"],
        init_min_actions=spec["init_min_actions"],
    )
    if spec["workers"] > 1:
        from repro.core.parallel import ParallelConfig

        trainer_config = TrainerConfig(
            num_levels=spec["levels"],
            max_iterations=spec["iterations"],
            init_min_actions=spec["init_min_actions"],
            parallel=ParallelConfig(users=True, workers=spec["workers"]),
        )
    t1 = time.perf_counter()
    result = ShardedTrainer(trainer_config).fit(
        store, generated.catalog, generated.feature_set, materialize=False
    )
    fit_seconds = time.perf_counter() - t1

    iterations = result.trace.num_iterations
    corpus_bytes = store.total_bytes
    peak_rss = peak_rss_bytes()
    point = {
        "users": store.num_users,
        "actions": store.num_actions,
        "mean_sequence_length": spec["mean_sequence_length"],
        "workers": spec["workers"],
        "shards": store.num_shards,
        "users_per_shard": spec["users_per_shard"],
        "corpus_bytes": corpus_bytes,
        "generate_seconds": round(generate_seconds, 2),
        "fit_seconds": round(fit_seconds, 2),
        "iterations": iterations,
        "events_per_sec": round(store.num_actions * iterations / fit_seconds),
        "peak_rss_bytes": int(peak_rss),
        "rss_to_corpus": round(peak_rss / corpus_bytes, 3),
    }
    print(json.dumps(point))
    return 0


def _launch_point(spec: dict) -> dict:
    """Run one point via a subprocess so its peak RSS is its own."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, str(Path(__file__).resolve()), "--run-point", json.dumps(spec)],
        env=env,
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"grid point {spec['users']} users / {spec['workers']} workers "
            f"failed:\n{proc.stderr}"
        )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def _parity_block(tmp_dir: Path) -> dict:
    """Small-corpus exactness check: in-RAM == sharded serial == pooled."""
    from repro.core.parallel import ParallelConfig
    from repro.core.shard import ShardedTrainer
    from repro.core.training import Trainer, TrainerConfig
    from repro.data.store import ActionStore
    from repro.synth import SyntheticConfig, generate_synthetic

    dataset = generate_synthetic(
        SyntheticConfig(
            num_users=120, num_items=300, num_levels=4,
            mean_sequence_length=25.0, seed=17,
        )
    )
    store = ActionStore.from_log(
        dataset.log, tmp_dir / "parity.store", users_per_shard=16
    )
    kwargs = dict(num_levels=4, max_iterations=10, init_min_actions=20)
    ram = Trainer(TrainerConfig(**kwargs)).fit(
        dataset.log, dataset.catalog, dataset.feature_set
    )
    serial = ShardedTrainer(TrainerConfig(**kwargs)).fit(
        store, dataset.catalog, dataset.feature_set
    )
    pooled = ShardedTrainer(
        TrainerConfig(
            **kwargs, parallel=ParallelConfig(users=True, workers=2)
        )
    ).fit(store, dataset.catalog, dataset.feature_set)

    def identical(a, b) -> bool:
        if a.trace.log_likelihoods != b.trace.log_likelihoods:
            return False
        return all(
            np.array_equal(a.assignments[u], b.assignments[u])
            for u in a.assignments
        )

    serial_ok = identical(ram, serial)
    pooled_ok = identical(ram, pooled)
    assert serial_ok, "sharded serial fit diverged from the in-RAM trainer"
    assert pooled_ok, "sharded pooled fit diverged from the in-RAM trainer"
    return {
        "users": dataset.log.num_users,
        "shards": store.num_shards,
        "iterations": ram.trace.num_iterations,
        "ll_trace_identical": serial_ok,
        "assignments_identical": serial_ok,
        "pooled_identical": pooled_ok,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tiny", action="store_true",
        help="CI smoke: two small points plus the parity block",
    )
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_scale.json"))
    parser.add_argument(
        "--work-dir", default=None,
        help="where the per-point store directories are written "
        "(default: a fresh temp dir, deleted afterwards)",
    )
    parser.add_argument("--run-point", default=None, help=argparse.SUPPRESS)
    args = parser.parse_args()

    if args.run_point is not None:
        return _run_point(json.loads(args.run_point))

    grid = TINY_POINTS if args.tiny else FULL_POINTS
    with tempfile.TemporaryDirectory(
        prefix="repro-bench-scale-", dir=args.work_dir
    ) as tmp:
        tmp_dir = Path(tmp)
        print("parity: fitting one corpus in-RAM, sharded serial, and pooled...")
        parity = _parity_block(tmp_dir)
        print(
            f"parity: bit-identical over {parity['iterations']} iterations "
            f"({parity['users']} users, {parity['shards']} shards, pooled included)"
        )

        points = []
        for users, mean_length, workers, iterations in grid:
            spec = {
                "users": users,
                "mean_sequence_length": mean_length,
                "workers": workers,
                "iterations": iterations,
                "items": 5_000,
                "levels": 5,
                "users_per_shard": 4_096,
                "init_min_actions": 20,
                "seed": 1,
            }
            point_dir = tmp_dir / f"point-{users}-{workers}"
            point_dir.mkdir()
            spec["dir"] = str(point_dir)
            print(f"point: {users:,} users × {workers} worker(s)...", flush=True)
            point = _launch_point(spec)
            points.append(point)
            print(
                f"  {point['actions']:,} actions in {point['shards']} shards "
                f"({point['corpus_bytes'] / 1e6:.0f}MB) — gen "
                f"{point['generate_seconds']}s, fit {point['fit_seconds']}s, "
                f"{point['events_per_sec']:,} events/s, peak RSS "
                f"{point['peak_rss_bytes'] / 1e6:.0f}MB "
                f"({point['rss_to_corpus']:.2f}× corpus)"
            )
            # Free the point's store before the next one lands.
            for child in sorted(point_dir.rglob("*"), reverse=True):
                child.unlink() if child.is_file() else child.rmdir()

    for point in points:
        assert point["events_per_sec"] > 0
        assert point["iterations"] >= 1
        if point["corpus_bytes"] >= RSS_ASSERT_MIN_CORPUS:
            assert point["rss_to_corpus"] < 0.5, (
                "out-of-core training must keep peak RSS far below the "
                f"corpus: {point['rss_to_corpus']:.2f}× at "
                f"{point['users']:,} users"
            )

    payload = {
        "schema": "repro-bench-scale/1",
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpus": os.cpu_count(),
        },
        "grid": {"tiny": args.tiny, "points": len(points)},
        "parity": parity,
        "points": points,
    }
    Path(args.out).write_text(json.dumps(payload, indent=1) + "\n", encoding="utf-8")
    print(f"wrote {args.out}")
    headline = max(points, key=lambda p: p["actions"])
    print(
        f"headline: {headline['users']:,} users / {headline['actions']:,} "
        f"actions → {headline['events_per_sec']:,} events/s at "
        f"{headline['peak_rss_bytes'] / 1e6:.0f}MB peak RSS "
        f"({headline['rss_to_corpus']:.2f}× the {headline['corpus_bytes'] / 1e6:.0f}MB corpus)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
