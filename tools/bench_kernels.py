#!/usr/bin/env python
"""Benchmark the assignment kernels and write ``BENCH_kernels.json``.

Four measurements, mirroring the layers of the training loop:

1. **dp** — scalar :func:`best_monotone_path` loop vs the batched
   :func:`batch_assign` kernel over ragged user batches of several sizes.
2. **score_table** — cold :meth:`item_score_table` build vs a warm rebuild
   through :class:`ScoreTableCache` after refitting identical assignments
   (the steady state of late training iterations).
3. **cell_fit** — cold sufficient-statistics build + full-grid refit vs an
   incremental delta update refitting only the dirty levels' cells
   (:class:`~repro.core.stats.SkillStats`), with a cell-for-cell parity
   guard against a cold rebuild.
4. **fit** — end-to-end training on the synthetic language dataset at
   ``S = 5``: the pre-engine serial path (uncached table + per-user scalar
   DP + update, exactly the old trainer loop) vs today's
   ``fit_skill_model`` with the auto-strategy engine.  Both converge to
   identical log-likelihoods; only wall-clock differs.

Run from the repo root::

    PYTHONPATH=src python tools/bench_kernels.py

Numbers are environment-dependent; the committed ``BENCH_kernels.json``
records the machine it was measured on.  CI runs this script in smoke
mode (``--repeats 1``) and asserts only sanity floors.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.core.dp import best_monotone_path
from repro.core.dp_batch import batch_assign
from repro.core.model import ScoreTableCache, SkillParameters, _cell_cache_key
from repro.core.stats import SkillStats
from repro.core.training import fit_skill_model, uniform_segment_levels
from repro.synth import LanguageConfig, generate_language

NUM_LEVELS = 5

#: S = 5 language simulation: per-level feature means extended from the
#: paper's 3-level values with the same monotone shape.
LANGUAGE_S5 = LanguageConfig(
    num_users=2000,
    num_levels=NUM_LEVELS,
    mean_sequence_length=40.0,
    correction_means=(5.06, 4.85, 3.70, 2.64, 1.90),
    corrected_ratio_means=(0.80, 0.62, 0.50, 0.38, 0.25),
    seed=0,
)


def _best_of(fn, repeats: int) -> float:
    """Best wall-clock of ``repeats`` runs (rejects scheduler noise)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _ragged_batch(rng, num_users: int, num_items: int, max_len: int):
    table = rng.normal(size=(NUM_LEVELS, num_items))
    rows = [
        rng.integers(0, num_items, size=int(rng.integers(1, max_len + 1)))
        for _ in range(num_users)
    ]
    return table, rows


def bench_dp(repeats: int) -> list[dict]:
    """Scalar-vs-batched assignment over growing ragged batches."""
    results = []
    rng = np.random.default_rng(0)
    for num_users in (50, 500, 2000):
        table, rows = _ragged_batch(rng, num_users, num_items=400, max_len=60)
        serial_s = _best_of(
            lambda: [best_monotone_path(table[:, r].T) for r in rows], repeats
        )
        batched_s = _best_of(lambda: batch_assign(table, rows), repeats)
        # Parity guard: a fast-but-wrong kernel must not publish numbers.
        for r, got in zip(rows, batch_assign(table, rows)):
            expected = best_monotone_path(table[:, r].T)
            assert got.log_likelihood == expected.log_likelihood
        results.append(
            {
                "num_users": num_users,
                "serial_seconds": serial_s,
                "batched_seconds": batched_s,
                "speedup": serial_s / batched_s,
            }
        )
    return results


def bench_score_table(repeats: int) -> dict:
    """Cold build vs warm cached rebuild with unchanged cells."""
    dataset = generate_language(LANGUAGE_S5)
    encoded = dataset.feature_set.encode(dataset.catalog)
    rows = np.arange(encoded.num_items)
    levels = rows % NUM_LEVELS

    def fit():
        return SkillParameters.fit_from_assignments(
            encoded, rows, levels, num_levels=NUM_LEVELS
        )

    params = fit()
    cold_s = _best_of(lambda: params.item_score_table(encoded), repeats)

    cache = ScoreTableCache()
    params.item_score_table(encoded, cache=cache)
    refit = fit()  # equal cells, brand-new objects — the warm-iteration case
    misses_before = cache.misses
    warm_s = _best_of(
        lambda: refit.item_score_table(encoded, cache=cache), repeats
    )
    return {
        "num_items": encoded.num_items,
        "cold_seconds": cold_s,
        "warm_seconds": warm_s,
        "speedup": cold_s / warm_s,
        "rows_recomputed_warm": cache.misses - misses_before,
    }


def bench_cell_fit(repeats: int) -> dict:
    """Cold statistics build + full-grid refit vs an incremental update.

    The incremental case is the trainer's steady state: a small batch of
    actions moved between two levels, so the statistics are patched with
    deltas and only the two dirty levels' cells are refit.  A parity guard
    asserts the patched statistics produce the same grid, cell for cell,
    as a cold rebuild of the new assignment.
    """
    dataset = generate_language(LANGUAGE_S5)
    encoded = dataset.feature_set.encode(dataset.catalog)
    user_rows = [
        encoded.rows_for_sequence(dataset.log.sequence(u))
        for u in dataset.log.users
    ]
    rows = np.concatenate(user_rows)
    levels = np.concatenate(
        [uniform_segment_levels(len(r), NUM_LEVELS) for r in user_rows]
    )

    def cold_fit():
        built = SkillStats.from_assignments(
            encoded, rows, levels, num_levels=NUM_LEVELS
        )
        return SkillParameters.fit_from_stats(built)

    cold_s = _best_of(cold_fit, repeats)

    # Move ~1% of the level-1 actions up to level 2: two dirty levels.
    rng = np.random.default_rng(0)
    candidates = np.flatnonzero(levels == 1)
    moved = rng.choice(candidates, size=max(1, len(rows) // 100), replace=False)
    new_levels = levels.copy()
    new_levels[moved] = 2

    stats = SkillStats.from_assignments(encoded, rows, levels, num_levels=NUM_LEVELS)
    base = SkillParameters.fit_from_stats(stats)
    state = {"forward": True}

    def incremental_fit():
        # Alternate the move's direction so each timed run patches the same
        # number of actions and refits the same two dirty levels.
        old, new = (levels, new_levels) if state["forward"] else (new_levels, levels)
        state["forward"] = not state["forward"]
        dirty = stats.update(rows[moved], old[moved], new[moved])
        return SkillParameters.fit_from_stats(
            stats, previous=base, dirty_levels=dirty
        ), dirty

    incremental_s = _best_of(incremental_fit, repeats)

    # Parity guard: leave the stats at the *new* assignment and compare
    # against a cold rebuild, cell for cell.
    if state["forward"]:  # an even number of timed runs: still at the original
        stats.update(rows[moved], levels[moved], new_levels[moved])
    patched = SkillParameters.fit_from_stats(stats)
    rebuilt = SkillParameters.fit_from_stats(
        SkillStats.from_assignments(encoded, rows, new_levels, num_levels=NUM_LEVELS)
    )
    matches = all(
        _cell_cache_key(a) == _cell_cache_key(b)
        for row_a, row_b in zip(patched.cells, rebuilt.cells)
        for a, b in zip(row_a, row_b)
    )
    assert matches, "incremental statistics diverged from a cold rebuild"
    return {
        "num_actions": len(rows),
        "changed_actions": len(moved),
        "dirty_levels": 2,
        "num_levels": NUM_LEVELS,
        "cold_seconds": cold_s,
        "incremental_seconds": incremental_s,
        "speedup": cold_s / incremental_s,
        "incremental_matches_cold": matches,
    }


def _legacy_serial_fit(dataset, max_iterations: int, tol: float) -> tuple[float, int]:
    """The pre-engine training loop: uncached table, per-user scalar DP.

    Replicates the old trainer's per-iteration work exactly (init from
    uniform segments of the long sequences, assignment, convergence test,
    update) so the end-to-end comparison is apples-to-apples.
    """
    encoded = dataset.feature_set.encode(dataset.catalog)
    users = list(dataset.log.users)
    user_rows = [encoded.rows_for(dataset.log.sequence(u).items) for u in users]
    init_rows = [r for r in user_rows if len(r) >= 5]
    parameters = SkillParameters.fit_from_assignments(
        encoded,
        np.concatenate(init_rows),
        np.concatenate(
            [uniform_segment_levels(len(r), NUM_LEVELS) for r in init_rows]
        ),
        num_levels=NUM_LEVELS,
    )
    log_likelihoods: list[float] = []
    for _ in range(max_iterations):
        table = parameters.item_score_table(encoded)
        paths = [best_monotone_path(table[:, r].T) for r in user_rows]
        total_ll = float(sum(p.log_likelihood for p in paths))
        if log_likelihoods:
            previous = log_likelihoods[-1]
            log_likelihoods.append(total_ll)
            if abs(total_ll - previous) <= tol * max(1.0, abs(previous)):
                break
        else:
            log_likelihoods.append(total_ll)
        parameters = SkillParameters.fit_from_assignments(
            encoded,
            np.concatenate(user_rows),
            np.concatenate([p.levels for p in paths]),
            num_levels=NUM_LEVELS,
        )
    return log_likelihoods[-1], len(log_likelihoods)


def bench_fit(repeats: int) -> dict:
    """End-to-end language fit at S = 5: legacy serial loop vs the engine."""
    dataset = generate_language(LANGUAGE_S5)
    max_iterations, tol = 30, 1e-6

    legacy_ll, legacy_iters = _legacy_serial_fit(dataset, max_iterations, tol)
    legacy_s = _best_of(
        lambda: _legacy_serial_fit(dataset, max_iterations, tol), repeats
    )

    def engine_fit():
        return fit_skill_model(
            dataset.log,
            dataset.catalog,
            dataset.feature_set,
            NUM_LEVELS,
            init_min_actions=5,
            max_iterations=max_iterations,
            tol=tol,
        )

    model = engine_fit()
    engine_s = _best_of(engine_fit, repeats)
    assert model.trace.log_likelihoods[-1] == legacy_ll, (
        "engine fit diverged from the legacy loop — benchmark is not "
        "comparing equivalent work"
    )
    assert model.trace.num_iterations == legacy_iters
    # The engine time recorded by PR 3's run of this benchmark on the same
    # machine and dataset — the baseline the batched-plan + incremental
    # M-step work is measured against.
    pr3_engine_s = 0.9127408790000118
    return {
        "dataset": "synthetic language",
        "num_levels": NUM_LEVELS,
        "num_users": LANGUAGE_S5.num_users,
        "num_actions": dataset.log.num_actions,
        "iterations": legacy_iters,
        "legacy_serial_seconds": legacy_s,
        "engine_auto_seconds": engine_s,
        "speedup": legacy_s / engine_s,
        "pr3_engine_auto_seconds": pr3_engine_s,
        "speedup_vs_pr3": pr3_engine_s / engine_s,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_kernels.json",
    )
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args()

    report = {
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "dp": bench_dp(args.repeats),
        "score_table": bench_score_table(args.repeats),
        "cell_fit": bench_cell_fit(args.repeats),
        "fit": bench_fit(args.repeats),
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))


if __name__ == "__main__":
    main()
