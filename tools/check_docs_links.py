#!/usr/bin/env python
"""Check intra-repo markdown links (and heading anchors) for rot.

Docs that point at files which moved, or at headings that were renamed,
fail silently for months — a reader hits the dead link long after the PR
that broke it merged.  This checker walks ``README.md`` plus everything
under ``docs/``, extracts every inline markdown link, and fails (exit 1)
when:

- a relative link's target file does not exist in the repo, or
- a ``#anchor`` fragment names no heading in the target file (GitHub
  slug rules: lowercase, punctuation dropped, spaces to hyphens,
  duplicate slugs suffixed ``-1``, ``-2``, ...).

External links (``http://``, ``https://``, ``mailto:``) are out of
scope — they need a network and their own rot policy.  Links inside
fenced code blocks and inline code spans are ignored; those are syntax
examples, not navigation.  Standard library only; CI runs it in the
``docs`` job::

    python tools/check_docs_links.py
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

#: ``[text](target)`` — non-greedy text, no nested parens in target.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_FENCE = re.compile(r"^(```|~~~)")
_CODE_SPAN = re.compile(r"`[^`]*`")
_HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
_EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def _slugify(heading: str) -> str:
    """GitHub's anchor algorithm, close enough for ASCII docs."""
    text = _CODE_SPAN.sub(lambda m: m.group(0).strip("`"), heading)
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # linked headings
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _strip_fences(lines: list[str]) -> list[str]:
    """Blank out fenced code blocks, keeping line numbers stable."""
    out: list[str] = []
    fence: str | None = None
    for line in lines:
        match = _FENCE.match(line.lstrip())
        if match:
            if fence is None:
                fence = match.group(1)
            elif match.group(1) == fence:
                fence = None
            out.append("")
            continue
        out.append("" if fence is not None else line)
    return out


def _anchors(path: Path) -> set[str]:
    slugs: set[str] = set()
    counts: dict[str, int] = {}
    for line in _strip_fences(path.read_text(encoding="utf-8").splitlines()):
        match = _HEADING.match(line)
        if not match:
            continue
        slug = _slugify(match.group(2))
        seen = counts.get(slug, 0)
        counts[slug] = seen + 1
        slugs.add(slug if seen == 0 else f"{slug}-{seen}")
    return slugs


def check_file(path: Path, repo_root: Path) -> list[str]:
    problems: list[str] = []
    lines = _strip_fences(path.read_text(encoding="utf-8").splitlines())
    for lineno, line in enumerate(lines, start=1):
        line = _CODE_SPAN.sub("", line)
        for match in _LINK.finditer(line):
            target = match.group(1)
            if target.startswith(_EXTERNAL):
                continue
            raw_path, _, fragment = target.partition("#")
            if raw_path:
                resolved = (path.parent / raw_path).resolve()
                try:
                    resolved.relative_to(repo_root)
                except ValueError:
                    problems.append(
                        f"{path}:{lineno}: link escapes the repo: {target}"
                    )
                    continue
                if not resolved.exists():
                    problems.append(f"{path}:{lineno}: dead link: {target}")
                    continue
            else:
                resolved = path  # bare #fragment: self-link
            if fragment and resolved.suffix == ".md":
                if fragment not in _anchors(resolved):
                    problems.append(
                        f"{path}:{lineno}: dead anchor: {target} "
                        f"(no heading slugs to '#{fragment}' in {resolved.name})"
                    )
    return problems


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "files", nargs="*",
        help="markdown files to check (default: README.md + docs/**/*.md)",
    )
    args = parser.parse_args()
    repo_root = Path(__file__).resolve().parent.parent
    if args.files:
        targets = [Path(f).resolve() for f in args.files]
    else:
        targets = [repo_root / "README.md"]
        targets += sorted((repo_root / "docs").glob("**/*.md"))
    problems: list[str] = []
    for target in targets:
        if not target.exists():
            problems.append(f"{target}: file not found")
            continue
        problems.extend(check_file(target.resolve(), repo_root))
    for problem in problems:
        print(problem, file=sys.stderr)
    def shown(target: Path) -> str:
        try:
            return str(target.relative_to(repo_root))
        except ValueError:
            return str(target)

    checked = ", ".join(shown(t) for t in targets)
    if problems:
        print(f"FAIL: {len(problems)} dead link(s) across {checked}", file=sys.stderr)
        return 1
    print(f"ok: no dead links in {checked}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
