#!/usr/bin/env python3
"""Validate the observability artifacts a run emits (CI schema check).

Checks two outputs against the documented contracts, using only the
standard library so CI can run it without installing the package:

- a JSONL log file produced with ``--log-json`` — every line must be a
  JSON object carrying the keys in the schema table of
  ``repro/obs/logging.py`` (ts, level, run, component, event, elapsed_ms);
- a metrics file produced with ``--metrics-out`` — must declare schema
  ``repro-metrics/1`` and carry numeric counters/gauges, histogram digests
  with count/total/mean/p50/p95/max (plus, when present, well-formed
  ``exemplars`` rows pairing a numeric value with a trace id), a telemetry
  object (or null), and — when present — an ``info`` section of
  string-or-null values;
- a span file produced with ``--trace-out`` — every line must be a
  ``repro-trace/1`` JSON object with trace/span ids, a parent id or null,
  a name, numeric ts/ms, and (when present) an ``attrs`` object.

``--require-metric NAME`` (repeatable) additionally asserts that a named
instrument exists somewhere in the snapshot, so CI can prove a subsystem
(e.g. the streaming ingest loop's ``ingest.*``/``foldin.*`` instruments)
actually ran, not just that the file parses.  ``--require-span NAME``
(repeatable) does the same for span names in the trace file — e.g. that a
serve round-trip really produced ``serve.request`` and ``foldin.cycle``
spans.

Usage::

    python tools/check_obs_output.py --log fit.log.jsonl --metrics metrics.json
    python tools/check_obs_output.py --metrics m.json \
        --require-metric ingest.events --require-metric foldin.folds
    python tools/check_obs_output.py --trace spans.jsonl \
        --require-span serve.request --require-span foldin.cycle

Exit status 0 when every given artifact validates, 1 otherwise; problems
are printed one per line.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Iterable

#: Keys every JSONL log record must carry (mirrors LOG_RECORD_KEYS in
#: repro.obs.logging — duplicated here so this tool stays stdlib-only).
LOG_RECORD_KEYS = ("ts", "level", "run", "component", "event", "elapsed_ms")

#: Summary statistics every histogram digest must report.
HISTOGRAM_KEYS = ("count", "total", "mean", "p50", "p95", "max")

METRICS_SCHEMA = "repro-metrics/1"

TRACE_SCHEMA = "repro-trace/1"

#: Keys every span record must carry (mirrors SpanRecord.to_json in
#: repro.obs.trace — duplicated here so this tool stays stdlib-only).
SPAN_KEYS = ("schema", "trace", "span", "parent", "name", "ts", "ms")


def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def check_log_lines(lines: Iterable[str]) -> list[str]:
    """Problems found in a JSONL log stream (empty list = valid).

    Blank lines are permitted (trailing newline); anything else must be a
    JSON object with the full record schema.
    """
    problems: list[str] = []
    count = 0
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        count += 1
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            problems.append(f"line {lineno}: not valid JSON ({exc})")
            continue
        if not isinstance(record, dict):
            problems.append(f"line {lineno}: record is not a JSON object")
            continue
        for key in LOG_RECORD_KEYS:
            if key not in record:
                problems.append(f"line {lineno}: missing key {key!r}")
        if "elapsed_ms" in record and not _is_number(record["elapsed_ms"]):
            problems.append(f"line {lineno}: elapsed_ms is not a number")
        fields = record.get("fields")
        if fields is not None and not isinstance(fields, dict):
            problems.append(f"line {lineno}: fields is not an object")
    if count == 0:
        problems.append("log stream contains no records")
    return problems


def check_metrics(payload) -> list[str]:
    """Problems found in a metrics snapshot (empty list = valid)."""
    problems: list[str] = []
    if not isinstance(payload, dict):
        return ["metrics payload is not a JSON object"]
    if payload.get("schema") != METRICS_SCHEMA:
        problems.append(
            f"schema is {payload.get('schema')!r}, expected {METRICS_SCHEMA!r}"
        )
    if not isinstance(payload.get("run"), str) or not payload.get("run"):
        problems.append("run id missing or not a non-empty string")

    for section in ("counters", "gauges"):
        table = payload.get(section)
        if not isinstance(table, dict):
            problems.append(f"{section} missing or not an object")
            continue
        for name, value in table.items():
            if not _is_number(value):
                problems.append(f"{section}[{name!r}] is not a number")

    histograms = payload.get("histograms")
    if not isinstance(histograms, dict):
        problems.append("histograms missing or not an object")
    else:
        for name, digest in histograms.items():
            if not isinstance(digest, dict):
                problems.append(f"histograms[{name!r}] is not an object")
                continue
            for key in HISTOGRAM_KEYS:
                if key not in digest:
                    problems.append(f"histograms[{name!r}] missing {key!r}")
                elif not _is_number(digest[key]):
                    problems.append(f"histograms[{name!r}][{key!r}] is not a number")
            exemplars = digest.get("exemplars")
            if exemplars is not None:  # optional: only with tracing enabled
                if not isinstance(exemplars, list) or not exemplars:
                    problems.append(
                        f"histograms[{name!r}].exemplars is not a non-empty list"
                    )
                    continue
                for position, row in enumerate(exemplars):
                    where = f"histograms[{name!r}].exemplars[{position}]"
                    if not isinstance(row, dict):
                        problems.append(f"{where} is not an object")
                        continue
                    if not _is_number(row.get("value")):
                        problems.append(f"{where}.value is not a number")
                    trace = row.get("trace")
                    if not isinstance(trace, str) or not trace:
                        problems.append(f"{where}.trace is not a non-empty string")

    info = payload.get("info")
    if info is not None:  # optional: only emitted once an Info instrument is set
        if not isinstance(info, dict):
            problems.append("info is not an object")
        else:
            for name, value in info.items():
                if value is not None and not isinstance(value, str):
                    problems.append(f"info[{name!r}] is neither a string nor null")

    if "telemetry" not in payload:
        problems.append("telemetry key missing (must be an object or null)")
    else:
        telemetry = payload["telemetry"]
        if telemetry is not None:
            if not isinstance(telemetry, dict):
                problems.append("telemetry is neither null nor an object")
            else:
                lls = telemetry.get("log_likelihoods")
                if not isinstance(lls, list) or not all(_is_number(v) for v in lls):
                    problems.append("telemetry.log_likelihoods missing or non-numeric")
                if not isinstance(telemetry.get("stage_seconds"), dict):
                    problems.append("telemetry.stage_seconds missing or not an object")
                if not isinstance(telemetry.get("pool_events"), dict):
                    problems.append("telemetry.pool_events missing or not an object")
    return problems


def check_trace_lines(lines: Iterable[str]) -> tuple[list[str], set[str]]:
    """Problems found in a ``repro-trace/1`` span stream, plus the span
    names seen (for ``--require-span``).

    Blank lines are permitted; anything else must be one JSON span object.
    """
    problems: list[str] = []
    names: set[str] = set()
    count = 0
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        count += 1
        try:
            span = json.loads(line)
        except json.JSONDecodeError as exc:
            problems.append(f"line {lineno}: not valid JSON ({exc})")
            continue
        if not isinstance(span, dict):
            problems.append(f"line {lineno}: span is not a JSON object")
            continue
        for key in SPAN_KEYS:
            if key not in span:
                problems.append(f"line {lineno}: missing key {key!r}")
        if "schema" in span and span["schema"] != TRACE_SCHEMA:
            problems.append(
                f"line {lineno}: schema is {span['schema']!r}, "
                f"expected {TRACE_SCHEMA!r}"
            )
        for key in ("trace", "span"):
            value = span.get(key)
            if key in span and (not isinstance(value, str) or not value):
                problems.append(f"line {lineno}: {key} is not a non-empty string")
        parent = span.get("parent")
        if "parent" in span and parent is not None and not isinstance(parent, str):
            problems.append(f"line {lineno}: parent is neither a string nor null")
        name = span.get("name")
        if "name" in span:
            if not isinstance(name, str) or not name:
                problems.append(f"line {lineno}: name is not a non-empty string")
            else:
                names.add(name)
        for key in ("ts", "ms"):
            if key in span and not _is_number(span[key]):
                problems.append(f"line {lineno}: {key} is not a number")
        attrs = span.get("attrs")
        if attrs is not None and not isinstance(attrs, dict):
            problems.append(f"line {lineno}: attrs is not an object")
    if count == 0:
        problems.append("trace stream contains no spans")
    return problems, names


def check_required_metrics(payload, required: Iterable[str]) -> list[str]:
    """Names in ``required`` that appear in no instrument section."""
    sections = ("counters", "gauges", "histograms", "info")
    present: set[str] = set()
    if isinstance(payload, dict):
        for section in sections:
            table = payload.get(section)
            if isinstance(table, dict):
                present.update(table)
    return [
        f"required metric {name!r} not found in any of {'/'.join(sections)}"
        for name in required
        if name not in present
    ]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--log", help="JSONL log file to validate")
    parser.add_argument("--metrics", help="metrics JSON file to validate")
    parser.add_argument("--trace", help="repro-trace/1 JSONL span file to validate")
    parser.add_argument(
        "--require-metric",
        action="append",
        default=[],
        metavar="NAME",
        help="fail unless this instrument exists in the metrics snapshot "
        "(repeatable; implies --metrics)",
    )
    parser.add_argument(
        "--require-span",
        action="append",
        default=[],
        metavar="NAME",
        help="fail unless a span with this name exists in the trace file "
        "(repeatable; implies --trace)",
    )
    args = parser.parse_args(argv)
    if not args.log and not args.metrics and not args.trace:
        parser.error("nothing to check: pass --log, --metrics, and/or --trace")
    if args.require_metric and not args.metrics:
        parser.error("--require-metric needs --metrics")
    if args.require_span and not args.trace:
        parser.error("--require-span needs --trace")

    problems: list[str] = []
    if args.log:
        try:
            with open(args.log, encoding="utf-8") as handle:
                problems += [f"{args.log}: {p}" for p in check_log_lines(handle)]
        except OSError as exc:
            problems.append(f"{args.log}: cannot read ({exc})")
    if args.metrics:
        try:
            with open(args.metrics, encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            problems.append(f"{args.metrics}: cannot read ({exc})")
        else:
            problems += [f"{args.metrics}: {p}" for p in check_metrics(payload)]
            problems += [
                f"{args.metrics}: {p}"
                for p in check_required_metrics(payload, args.require_metric)
            ]
    if args.trace:
        try:
            with open(args.trace, encoding="utf-8") as handle:
                trace_problems, span_names = check_trace_lines(handle)
        except OSError as exc:
            problems.append(f"{args.trace}: cannot read ({exc})")
        else:
            problems += [f"{args.trace}: {p}" for p in trace_problems]
            problems += [
                f"{args.trace}: required span {name!r} not found"
                for name in args.require_span
                if name not in span_names
            ]

    for problem in problems:
        print(problem)
    if not problems:
        checked = ", ".join(p for p in (args.log, args.metrics, args.trace) if p)
        print(f"ok: {checked}")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
